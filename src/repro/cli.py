"""Command-line interface for the Sharon reproduction.

The CLI exposes the library's main workflows without writing Python:

``python -m repro optimize``
    Parse a workload file (one SASE-style query per block separated by blank
    lines), generate or load rates, run the chosen optimizer, and print the
    sharing plan.

``python -m repro run``
    Optimize a workload and execute it over a generated data set with the
    chosen executor, printing results and metrics.

``python -m repro figures``
    Reproduce the evaluation figures as text tables (same sweeps as
    ``examples/reproduce_figures.py``).

``python -m repro datasets``
    Generate one of the synthetic data sets and print its statistics (or
    write it to a CSV file).

``python -m repro record``
    Generate a synthetic data set and write it as a durable, seekable JSONL
    event log (the format ``repro replay`` consumes).

``python -m repro replay``
    Feed a recorded event log through the deterministic engine — at instant,
    realtime, or Nx speed — optionally writing checkpoints, resuming from
    one, recording a state-hash trace, or repeating the replay to verify
    byte-identical final state (see ``docs/replay.md``).

``python -m repro bench``
    Run the headless engine-throughput benchmark (stream scaling, the
    Fig. 13 dense-sharing scenario, and the cohort-compaction, pane-sharing,
    columnar-routing, and sharded-groups sections) and write the
    machine-readable ``BENCH_engine.json`` used to track the performance
    trajectory (schema: ``docs/benchmarks.md``).

The CLI is intentionally thin: every command maps onto documented library
calls so scripts can graduate to the Python API without surprises.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from .core import ExhaustiveOptimizer, GreedyOptimizer, SharonOptimizer
from .datasets import (
    EcommerceConfig,
    LinearRoadConfig,
    TaxiConfig,
    generate_ecommerce_stream,
    generate_linear_road_stream,
    generate_taxi_stream,
    purchase_workload,
    traffic_workload,
)
from .events import EventStream
from .executor import ASeqExecutor, FlinkLikeExecutor, SharonExecutor, SpassLikeExecutor
from .experiments import format_table, run_all_figures
from .queries import Workload, parse_query
from .utils import RateCatalog

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------------
# input helpers
# ---------------------------------------------------------------------------

def load_workload(path: str | Path) -> Workload:
    """Load a workload file: SASE-style queries separated by blank lines.

    Lines starting with ``#`` are comments.  Each query block may start with
    ``name: <identifier>`` to name the query; unnamed queries get ``q1``,
    ``q2``, ... in file order.
    """
    text = Path(path).read_text(encoding="utf-8")
    blocks = [block.strip() for block in text.split("\n\n") if block.strip()]
    queries = []
    for index, block in enumerate(blocks, start=1):
        lines = [line for line in block.splitlines() if not line.strip().startswith("#")]
        name = f"q{index}"
        if lines and lines[0].lower().startswith("name:"):
            name = lines[0].split(":", 1)[1].strip()
            lines = lines[1:]
        query_text = " ".join(line.strip() for line in lines if line.strip())
        if not query_text:
            continue
        queries.append(parse_query(query_text, name=name))
    if not queries:
        raise SystemExit(f"no queries found in workload file {path}")
    return Workload(queries, name=Path(path).stem)


def builtin_workload(name: str) -> Workload:
    if name == "traffic":
        return traffic_workload()
    if name == "purchase":
        return purchase_workload()
    raise SystemExit(f"unknown built-in workload {name!r}; choose traffic or purchase")


def build_stream(dataset: str, duration: int, rate: float, seed: int) -> EventStream:
    if dataset == "taxi":
        return generate_taxi_stream(
            TaxiConfig(duration_seconds=duration, reports_per_second=rate, seed=seed)
        )
    if dataset == "linear-road":
        return generate_linear_road_stream(
            LinearRoadConfig(
                duration_seconds=duration, initial_rate=max(rate / 4, 1.0), final_rate=rate, seed=seed
            )
        )
    if dataset == "ecommerce":
        return generate_ecommerce_stream(
            EcommerceConfig(duration_seconds=duration, purchases_per_second=rate, seed=seed)
        )
    raise SystemExit(f"unknown dataset {dataset!r}; choose taxi, linear-road, or ecommerce")


def resolve_workload(args: argparse.Namespace) -> Workload:
    if args.workload_file:
        return load_workload(args.workload_file)
    return builtin_workload(args.workload)


OPTIMIZERS = {
    "sharon": lambda rates: SharonOptimizer(rates, time_budget_seconds=10.0),
    "sharon-expanded": lambda rates: SharonOptimizer(rates, expand=True, time_budget_seconds=10.0),
    "greedy": lambda rates: GreedyOptimizer(rates),
    "exhaustive": lambda rates: ExhaustiveOptimizer(rates),
}

EXECUTORS = {
    "sharon": lambda workload, plan, args: SharonExecutor(
        workload,
        plan=plan,
        memory_sample_interval=8,
        shards=args.shards,
        max_lateness=args.max_lateness,
        late_policy=args.late_policy,
        backend=args.backend,
    ),
    "aseq": lambda workload, plan, args: ASeqExecutor(
        workload,
        memory_sample_interval=8,
        shards=args.shards,
        max_lateness=args.max_lateness,
        late_policy=args.late_policy,
        backend=args.backend,
    ),
    "flink": lambda workload, plan, args: FlinkLikeExecutor(workload, memory_sample_interval=8),
    "spass": lambda workload, plan, args: SpassLikeExecutor(
        workload, plan=plan, memory_sample_interval=8
    ),
}

#: Executors that understand group-sharded parallel execution (``--shards``).
SHARDABLE_EXECUTORS = ("sharon", "aseq")

#: Executors that understand disorder tolerance (``--max-lateness``); the
#: same engine-backed pair, since the reorder buffer lives in the engine.
DISORDER_EXECUTORS = SHARDABLE_EXECUTORS

#: Executors that understand the numeric kernel backend (``--backend``); the
#: same engine-backed pair, since the kernels live in the aggregation layer.
BACKEND_EXECUTORS = SHARDABLE_EXECUTORS


# ---------------------------------------------------------------------------
# sub-commands
# ---------------------------------------------------------------------------

def cmd_optimize(args: argparse.Namespace) -> int:
    workload = resolve_workload(args)
    stream = build_stream(args.dataset, args.duration, args.rate, args.seed)
    rates = RateCatalog.from_stream(stream, per="time-unit")
    optimizer = OPTIMIZERS[args.optimizer](rates)
    result = optimizer.optimize(workload)

    print(f"Workload {workload.name!r}: {len(workload)} queries")
    print(
        f"Candidates: {result.candidates_total} "
        f"(after expansion {result.candidates_after_expansion}, "
        f"after reduction {result.candidates_after_reduction})"
    )
    print(f"Optimizer latency: {result.total_seconds * 1000:.2f} ms; "
          f"plans considered: {result.plans_considered}; "
          f"fallback used: {result.used_fallback}")
    print(f"\nSharing plan (score {result.plan.score:.2f}):")
    if result.plan.is_empty:
        print("  (empty plan - every query runs non-shared)")
    for candidate in result.plan:
        print(f"  share {candidate.pattern!r} among {list(candidate.query_names)} "
              f"(benefit {candidate.benefit:.2f})")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    if args.shards > 1 and args.executor not in SHARDABLE_EXECUTORS:
        raise SystemExit(
            f"--shards is only supported by the engine-backed executors "
            f"{SHARDABLE_EXECUTORS}, not {args.executor!r}"
        )
    if args.checkpoint_every:
        if args.executor != "sharon" or args.shards > 1:
            raise SystemExit(
                "--checkpoint-every requires the in-process sharon executor "
                "(checkpointing snapshots the single-process engine; see docs/replay.md)"
            )
    if args.max_lateness is not None:
        if args.executor not in DISORDER_EXECUTORS:
            raise SystemExit(
                f"--max-lateness is only supported by the engine-backed executors "
                f"{DISORDER_EXECUTORS}, not {args.executor!r}"
            )
        if args.shards > 1:
            raise SystemExit(
                "--max-lateness cannot be combined with --shards > 1 "
                "(the shard splitter consumes the stream in timestamp order; "
                "see docs/disorder.md)"
            )
    if args.backend != "python" and args.executor not in BACKEND_EXECUTORS:
        raise SystemExit(
            f"--backend is only supported by the engine-backed executors "
            f"{BACKEND_EXECUTORS}, not {args.executor!r}"
        )
    workload = resolve_workload(args)
    stream = build_stream(args.dataset, args.duration, args.rate, args.seed)
    if args.record:
        from .events.log import write_event_log

        written = write_event_log(stream, args.record, stream_name=stream.name)
        print(f"Recorded {written} events to {args.record}")
    rates = RateCatalog.from_stream(stream, per="time-unit")
    plan = OPTIMIZERS[args.optimizer](rates).optimize(workload).plan
    if args.checkpoint_every:
        from .replay import ReplayRunner

        runner = ReplayRunner(
            workload,
            plan=plan,
            name="Sharon",
            max_lateness=args.max_lateness,
            late_policy=args.late_policy,
            backend=args.backend,
        )
        replay_report = runner.run(
            stream,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
        )
        report = replay_report.report
        print(f"state hash: {replay_report.state_hash}")
        print(
            f"wrote {len(replay_report.checkpoints)} checkpoints "
            f"(every {args.checkpoint_every} batches) to {args.checkpoint_dir}"
        )
    else:
        executor = EXECUTORS[args.executor](workload, plan, args)
        report = executor.run(stream)

    print(report.metrics.summary())
    if report.metrics.events_late:
        print(
            f"late events beyond --max-lateness: {report.metrics.events_late} "
            f"({report.metrics.events_dropped} dropped)"
        )
    if report.metrics.shards > 1:
        print(
            f"sharded across {report.metrics.shards} worker processes: "
            f"{list(report.metrics.groups_per_shard)} groups per shard, "
            f"skew {report.metrics.shard_skew:.2f}"
        )
    rows = [
        [result.query_name, repr(result.window), repr(result.group), result.value]
        for result in sorted(
            report.results.nonzero(), key=lambda r: (r.query_name, r.window), reverse=False
        )[: args.limit]
    ]
    if rows:
        print()
        print(format_table(["query", "window", "group", "value"], rows, title="Results (first rows)"))
    else:
        print("No non-zero results produced.")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    results = run_all_figures(quick=not args.full)
    for result in results:
        print(result.render())
        print()
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    stream = build_stream(args.dataset, args.duration, args.rate, args.seed)
    stats = stream.statistics()
    print(f"{args.dataset}: {stats.total_events} events over {stats.duration} time units "
          f"({stats.overall_rate:.1f} events per time unit)")
    rows = [
        [event_type, count, round(stats.rate_of(event_type), 3)]
        for event_type, count in sorted(stats.counts_per_type.items())
    ]
    print(format_table(["event type", "events", "rate"], rows))
    if args.output:
        _write_csv(stream, args.output)
        print(f"\nWrote {len(stream)} events to {args.output}")
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    from .events.log import write_event_log

    stream = build_stream(args.dataset, args.duration, args.rate, args.seed)
    written = write_event_log(
        stream, args.output, stream_name=stream.name, fsync_every=args.fsync_every
    )
    size = Path(args.output).stat().st_size
    print(f"Recorded {written} events ({size:,} bytes) to {args.output}")
    print(f"Replay with: repro replay --log {args.output}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from .events.log import EventLogReader
    from .replay import ReplayRunner, ReplayTrace, first_divergence

    if args.repeat < 1:
        raise SystemExit(f"--repeat must be >= 1, got {args.repeat}")
    if args.repeat > 1 and args.resume:
        raise SystemExit("--repeat verifies full replays; it cannot be combined with --resume")
    reader = EventLogReader(args.log)
    recorded = reader.read_stream()
    workload = resolve_workload(args)
    rates = RateCatalog.from_stream(recorded, per="time-unit")
    plan = OPTIMIZERS[args.optimizer](rates).optimize(workload).plan
    churn = None
    if args.churn_script:
        from .executor.churn import load_churn_script

        churn = load_churn_script(args.churn_script)

    def make_runner() -> ReplayRunner:
        return ReplayRunner(
            workload,
            plan=plan,
            compaction=not args.no_compaction,
            panes=args.panes,
            columnar=not args.no_columnar,
            max_lateness=args.max_lateness,
            late_policy=args.late_policy,
            backend=args.backend,
            churn=churn,
        )

    replay_report = make_runner().run(
        reader,
        speed=args.speed,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        resume_from=args.resume,
        trace=bool(args.trace),
    )
    print(replay_report.report.metrics.summary())
    print(f"replayed {replay_report.events_replayed} events "
          f"in {replay_report.batches} timestamp batches")
    if args.resume:
        print(f"resumed from {args.resume}")
    if churn:
        print(f"applied churn script {args.churn_script} ({len(churn)} ops)")
    if replay_report.checkpoints:
        print(f"wrote {len(replay_report.checkpoints)} checkpoints to {args.checkpoint_dir}")
    if args.trace:
        replay_report.trace.write(args.trace)
        print(f"wrote {len(replay_report.trace)} trace entries to {args.trace}")
    print(f"state hash: {replay_report.state_hash}")

    for iteration in range(2, args.repeat + 1):
        trace = ReplayTrace() if args.trace else None
        repeat_report = make_runner().run(args.log, speed=args.speed, trace=trace)
        if repeat_report.state_hash != replay_report.state_hash:
            divergence = None
            if trace is not None:
                divergence = first_divergence(replay_report.trace, trace)
            raise SystemExit(
                f"replay {iteration}/{args.repeat} DIVERGED: "
                f"state hash {repeat_report.state_hash} != {replay_report.state_hash}"
                + (f"; first divergence at batch {divergence['index']}" if divergence else "")
            )
        print(f"replay {iteration}/{args.repeat}: state hash identical")
    if args.repeat > 1:
        print(f"{args.repeat} replays produced byte-identical final state")
    return 0


#: Section names accepted by ``repro bench --section``, in run order.
BENCH_SECTION_NAMES = (
    "engine",
    "compaction",
    "pane_sharing",
    "columnar_routing",
    "sharded_groups",
    "replay",
    "disorder",
    "kernel_numerics",
)


def _bench_engine() -> list:
    from .experiments import run_engine_benchmark

    records = run_engine_benchmark()
    rows = [
        [
            r.scenario,
            r.executor,
            r.events,
            f"{r.events_per_sec:,.0f}",
            f"{r.elapsed_median_seconds * 1000:,.1f}",
            f"{r.peak_mb:.2f}",
        ]
        for r in records
    ]
    print(
        format_table(
            ["scenario", "executor", "events", "events/sec (best)", "median ms", "peak MB"],
            rows,
            title="Engine throughput benchmark",
        )
    )
    return records


def _bench_compaction():
    from .experiments import run_compaction_benchmark

    compaction = run_compaction_benchmark()
    print(
        format_table(
            ["scenario", "events", "cohorts created", "merged", "ev/s on", "ev/s off"],
            [
                [
                    compaction.scenario,
                    compaction.events,
                    compaction.cohorts_created,
                    compaction.cohorts_merged,
                    f"{compaction.compaction_on_events_per_sec:,.0f}",
                    f"{compaction.compaction_off_events_per_sec:,.0f}",
                ]
            ],
            title="Cohort compaction",
        )
    )
    return compaction


def _bench_pane_sharing():
    from .experiments import run_pane_benchmark

    pane_sharing = run_pane_benchmark()
    print(
        format_table(
            ["scenario", "events", "panes", "merges", "ev/pane", "ev/s on", "ev/s off"],
            [
                [
                    pane_sharing.scenario,
                    pane_sharing.events,
                    pane_sharing.panes_created,
                    pane_sharing.pane_merges,
                    f"{pane_sharing.events_per_pane:.1f}",
                    f"{pane_sharing.panes_on_events_per_sec:,.0f}",
                    f"{pane_sharing.panes_off_events_per_sec:,.0f}",
                ]
            ],
            title="Pane sharing",
        )
    )
    return pane_sharing


def _bench_columnar_routing():
    from .experiments import run_routing_benchmark

    columnar_routing = run_routing_benchmark()
    print(
        format_table(
            ["scenario", "events", "types", "groups", "relevant", "ev/s on", "ev/s off"],
            [
                [
                    columnar_routing.scenario,
                    columnar_routing.events,
                    columnar_routing.event_types,
                    columnar_routing.groups,
                    f"{columnar_routing.relevant_fraction:.2%}",
                    f"{columnar_routing.columnar_on_events_per_sec:,.0f}",
                    f"{columnar_routing.columnar_off_events_per_sec:,.0f}",
                ]
            ],
            title="Columnar routing",
        )
    )
    return columnar_routing


def _bench_sharded_groups():
    from .experiments import run_sharding_benchmark

    sharded_groups = run_sharding_benchmark()
    print(
        format_table(
            ["scenario", "events", "groups", "shards", "skew", "cpus", "ev/s sharded", "ev/s 1-proc"],
            [
                [
                    sharded_groups.scenario,
                    sharded_groups.events,
                    sharded_groups.groups,
                    sharded_groups.shards,
                    f"{sharded_groups.shard_skew:.2f}",
                    sharded_groups.cpu_count,
                    f"{sharded_groups.sharded_events_per_sec:,.0f}",
                    f"{sharded_groups.unsharded_events_per_sec:,.0f}",
                ]
            ],
            title="Sharded groups",
        )
    )
    return sharded_groups


def _bench_replay():
    from .experiments import run_replay_benchmark

    replay = run_replay_benchmark()
    print(
        format_table(
            ["scenario", "events", "log KiB", "ev/s record", "ev/s replay", "ev/s live", "identical", "matches"],
            [
                [
                    replay.scenario,
                    replay.events,
                    f"{replay.log_bytes / 1024:,.0f}",
                    f"{replay.record_events_per_sec:,.0f}",
                    f"{replay.replay_events_per_sec:,.0f}",
                    f"{replay.live_events_per_sec:,.0f}",
                    "yes" if replay.replays_identical else "NO",
                    "yes" if replay.matches_live else "NO",
                ]
            ],
            title="Deterministic replay",
        )
    )
    return replay


def _bench_disorder():
    from .experiments import run_disorder_benchmark

    disorder = run_disorder_benchmark()
    print(
        format_table(
            ["scenario", "events", "lateness", "ev/s plain", "ev/s buffered", "ev/s shuffled", "overhead", "matches"],
            [
                [
                    disorder.scenario,
                    disorder.events,
                    disorder.max_lateness,
                    f"{disorder.inorder_events_per_sec:,.0f}",
                    f"{disorder.reordered_inorder_events_per_sec:,.0f}",
                    f"{disorder.reordered_shuffled_events_per_sec:,.0f}",
                    f"{disorder.reorder_overhead:.2f}x",
                    "yes" if disorder.shuffled_matches_sorted else "NO",
                ]
            ],
            title="Disorder tolerance",
        )
    )
    return disorder


def _bench_kernel_numerics():
    from .experiments import run_kernel_benchmark

    kernel_numerics = run_kernel_benchmark()
    measured = kernel_numerics.numpy_available
    numpy_rate = f"{kernel_numerics.numpy_events_per_sec:,.0f}" if measured else "n/a"
    speedup = f"{kernel_numerics.speedup:.2f}x" if measured else "n/a"
    print(
        format_table(
            ["scenario", "events", "cohorts", "numpy", "ev/s python", "ev/s numpy", "speedup", "matches"],
            [
                [
                    kernel_numerics.scenario,
                    kernel_numerics.events,
                    kernel_numerics.cohorts_created,
                    "yes" if kernel_numerics.numpy_available else "no",
                    f"{kernel_numerics.python_events_per_sec:,.0f}",
                    numpy_rate,
                    speedup,
                    ("yes" if kernel_numerics.results_match else "NO") if measured else "n/a",
                ]
            ],
            title="Kernel numerics",
        )
    )
    return kernel_numerics


#: Per-section benchmark runners: each runs one section, prints its table,
#: and returns the record handed to :func:`write_bench_json`.
_BENCH_SECTIONS = {
    "engine": _bench_engine,
    "compaction": _bench_compaction,
    "pane_sharing": _bench_pane_sharing,
    "columnar_routing": _bench_columnar_routing,
    "sharded_groups": _bench_sharded_groups,
    "replay": _bench_replay,
    "disorder": _bench_disorder,
    "kernel_numerics": _bench_kernel_numerics,
}


def cmd_bench(args: argparse.Namespace) -> int:
    from .experiments import write_bench_json

    parent = Path(args.output).resolve().parent
    if not parent.is_dir():
        raise SystemExit(f"output directory {parent} does not exist")
    if args.section:
        # Deduplicate while preserving canonical run order so repeated
        # --section flags cannot reorder or double-run a section.
        selected = [name for name in BENCH_SECTION_NAMES if name in set(args.section)]
    else:
        selected = list(BENCH_SECTION_NAMES)
    results = {name: _BENCH_SECTIONS[name]() for name in selected}
    records = results.get("engine", [])
    target = write_bench_json(
        records,
        args.output,
        compaction=results.get("compaction"),
        pane_sharing=results.get("pane_sharing"),
        columnar_routing=results.get("columnar_routing"),
        sharded_groups=results.get("sharded_groups"),
        replay=results.get("replay"),
        disorder=results.get("disorder"),
        kernel_numerics=results.get("kernel_numerics"),
    )
    print(f"\nWrote {len(selected)} section(s) to {target}")
    return 0


def _write_csv(stream: EventStream, path: str | Path) -> None:
    attribute_names = sorted({name for event in stream for name in event.attributes})
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["event_type", "timestamp", *attribute_names])
        for event in stream:
            writer.writerow(
                [event.event_type, event.timestamp]
                + [event.attribute(name, "") for name in attribute_names]
            )


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def _add_common_input_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload",
        default="traffic",
        choices=["traffic", "purchase"],
        help="built-in workload to use (default: traffic)",
    )
    parser.add_argument(
        "--workload-file",
        help="path to a workload file with one SASE-style query per blank-line-separated block",
    )
    parser.add_argument(
        "--dataset",
        default="taxi",
        choices=["taxi", "linear-road", "ecommerce"],
        help="synthetic data set to generate (default: taxi)",
    )
    parser.add_argument("--duration", type=int, default=300, help="stream duration in time units")
    parser.add_argument("--rate", type=float, default=10.0, help="events per time unit")
    parser.add_argument("--seed", type=int, default=1, help="random seed of the generator")
    parser.add_argument(
        "--optimizer",
        default="sharon",
        choices=sorted(OPTIMIZERS),
        help="optimizer choosing the sharing plan (default: sharon)",
    )


def _add_disorder_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-lateness",
        type=int,
        default=None,
        metavar="L",
        help="tolerate out-of-order arrival up to L time units through a "
        "watermark-driven reorder buffer (default: off = strict in-order; "
        "see docs/disorder.md)",
    )
    parser.add_argument(
        "--late-policy",
        default="raise",
        choices=["raise", "drop"],
        help="what to do with events later than --max-lateness allows: "
        "'raise' aborts the run, 'drop' counts and discards them "
        "(default: raise)",
    )


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default="python",
        choices=["python", "numpy", "auto"],
        help="kernel backend for the aggregation columns: 'python' is the "
        "pure-Python reference, 'numpy' vectorises the column commits "
        "(requires numpy, bit-identical results), 'auto' picks numpy when "
        "available (default: python)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Sharon: Shared Online Event Sequence Aggregation' (ICDE 2018)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    optimize_parser = subparsers.add_parser(
        "optimize", help="compute and print a sharing plan for a workload"
    )
    _add_common_input_arguments(optimize_parser)
    optimize_parser.set_defaults(handler=cmd_optimize)

    run_parser = subparsers.add_parser(
        "run", help="optimize a workload and execute it over a generated stream"
    )
    _add_common_input_arguments(run_parser)
    run_parser.add_argument(
        "--executor",
        default="sharon",
        choices=sorted(EXECUTORS),
        help="executor to use (default: sharon)",
    )
    run_parser.add_argument("--limit", type=int, default=15, help="number of result rows to print")
    run_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the stream's groups across this many worker processes "
        "(sharon/aseq only; 1 = in-process, the default)",
    )
    run_parser.add_argument(
        "--record",
        metavar="PATH",
        help="also write the generated stream to this JSONL event log "
        "(replayable with `repro replay --log PATH`)",
    )
    run_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="write an engine checkpoint every N timestamp batches "
        "(sharon executor, single process; default: 0 = off)",
    )
    run_parser.add_argument(
        "--checkpoint-dir",
        default="checkpoints",
        help="directory for checkpoint files (default: checkpoints)",
    )
    _add_disorder_arguments(run_parser)
    _add_backend_argument(run_parser)
    run_parser.set_defaults(handler=cmd_run)

    figures_parser = subparsers.add_parser(
        "figures", help="reproduce the evaluation figures as text tables"
    )
    figures_parser.add_argument("--full", action="store_true", help="run the full sweeps")
    figures_parser.set_defaults(handler=cmd_figures)

    datasets_parser = subparsers.add_parser(
        "datasets", help="generate a synthetic data set and print its statistics"
    )
    datasets_parser.add_argument(
        "--dataset",
        default="taxi",
        choices=["taxi", "linear-road", "ecommerce"],
    )
    datasets_parser.add_argument("--duration", type=int, default=120)
    datasets_parser.add_argument("--rate", type=float, default=10.0)
    datasets_parser.add_argument("--seed", type=int, default=1)
    datasets_parser.add_argument("--output", help="optional CSV file to write the events to")
    datasets_parser.set_defaults(handler=cmd_datasets)

    record_parser = subparsers.add_parser(
        "record", help="generate a synthetic data set and write it as a replayable event log"
    )
    record_parser.add_argument(
        "--dataset",
        default="taxi",
        choices=["taxi", "linear-road", "ecommerce"],
    )
    record_parser.add_argument("--duration", type=int, default=300)
    record_parser.add_argument("--rate", type=float, default=10.0)
    record_parser.add_argument("--seed", type=int, default=1)
    record_parser.add_argument(
        "--output",
        default="events.jsonl",
        help="path of the event-log file to write (default: events.jsonl)",
    )
    record_parser.add_argument(
        "--fsync-every",
        type=int,
        default=512,
        help="fsync the log after this many appended events (default: 512)",
    )
    record_parser.set_defaults(handler=cmd_record)

    replay_parser = subparsers.add_parser(
        "replay", help="replay a recorded event log through the deterministic engine"
    )
    _add_common_input_arguments(replay_parser)
    replay_parser.add_argument(
        "--log", required=True, help="event log to replay (written by `repro record` or `run --record`)"
    )
    replay_parser.add_argument(
        "--speed",
        default="instant",
        help="replay pacing: 'instant' (default), 'realtime', or an Nx multiplier like '4x'",
    )
    replay_parser.add_argument(
        "--panes", action="store_true", help="evaluate in pane-partitioned mode"
    )
    replay_parser.add_argument(
        "--no-columnar", action="store_true", help="disable columnar micro-batch ingestion"
    )
    replay_parser.add_argument(
        "--no-compaction", action="store_true", help="disable cohort compaction"
    )
    replay_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="write a checkpoint every N timestamp batches (default: 0 = off)",
    )
    replay_parser.add_argument(
        "--checkpoint-dir",
        default="checkpoints",
        help="directory for checkpoint files (default: checkpoints)",
    )
    replay_parser.add_argument(
        "--resume",
        metavar="CHECKPOINT",
        help="resume from this checkpoint file instead of replaying from the start",
    )
    replay_parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record a per-batch state-hash trace to this JSONL file",
    )
    replay_parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="replay N times and verify every run reaches a byte-identical final state",
    )
    replay_parser.add_argument(
        "--churn-script",
        metavar="PATH",
        help=(
            "JSON attach/detach schedule applied deterministically at batch "
            "boundaries while replaying (see docs/churn.md)"
        ),
    )
    _add_disorder_arguments(replay_parser)
    _add_backend_argument(replay_parser)
    replay_parser.set_defaults(handler=cmd_replay)

    bench_parser = subparsers.add_parser(
        "bench", help="run the engine throughput benchmark and write BENCH_engine.json"
    )
    bench_parser.add_argument(
        "--output",
        default="BENCH_engine.json",
        help="path of the machine-readable result file (default: BENCH_engine.json)",
    )
    bench_parser.add_argument(
        "--section",
        action="append",
        choices=list(BENCH_SECTION_NAMES),
        metavar="NAME",
        help="run only this benchmark section (repeatable; default: all of "
        + ", ".join(BENCH_SECTION_NAMES)
        + ")",
    )
    bench_parser.set_defaults(handler=cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
