"""Deterministic replay: event logs in, byte-identical engine state out.

This package turns the engine's checkpoint hooks
(:meth:`~repro.executor.engine.StreamingEngine.new_session` and the
``export_state``/``restore_state`` methods threaded through every state
layer) into a user-facing subsystem:

* :class:`ReplayRunner` feeds a recorded event log — or any event iterable —
  through the engine at instant / realtime / Nx speed, optionally writing
  checkpoints every N timestamp batches and recording a per-batch state-hash
  trace.
* :mod:`~repro.replay.checkpoint` defines the checkpoint file format
  (engine snapshot + stream position + workload fingerprint + engine
  config) and validates compatibility before resuming.
* :mod:`~repro.replay.trace` provides the canonical state hashing and the
  first-divergence locator used to debug two runs that should agree.

See ``docs/replay.md`` for the determinism contract.
"""

from .checkpoint import (
    Checkpoint,
    CheckpointError,
    describe_churn_op,
    load_checkpoint,
    save_checkpoint,
    workload_fingerprint,
)
from .runner import ReplayReport, ReplayRunner
from .trace import ReplayTrace, TraceEntry, canonical_json, first_divergence, state_hash

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "describe_churn_op",
    "load_checkpoint",
    "save_checkpoint",
    "workload_fingerprint",
    "ReplayReport",
    "ReplayRunner",
    "ReplayTrace",
    "TraceEntry",
    "canonical_json",
    "first_divergence",
    "state_hash",
]
