"""Checkpoint files: a stream position plus a full engine-state snapshot.

A checkpoint captures everything needed to resume a replay such that the
resumed run is byte-identical to one that consumed the whole stream:

* ``events_consumed`` — how many events of the log the session has fully
  processed (the seek index for :meth:`~repro.events.log.EventLogReader.events_from`);
* ``last_timestamp`` — the timestamp of the last processed batch
  (informational; the engine state already encodes it);
* ``workload_fingerprint`` — sha256 over a structural description of the
  workload and sharing plan, so a checkpoint cannot silently resume against
  different queries;
* ``engine_config`` — the toggles (mode/columnar/compaction) the exporting
  engine ran with, validated on restore;
* ``engine_state`` — the session snapshot
  (:meth:`~repro.executor.engine.EngineSession.export_state`), including
  emitted results and deterministic metrics counters.

Checkpoints are only taken between timestamp batches (the engine's state
layers refuse to export staged mid-batch state), which is also why resume
can seek the log by a plain event count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from ..core.plan import SharingPlan
from ..queries.workload import Workload
from .trace import canonical_json

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "Checkpoint",
    "workload_fingerprint",
    "describe_churn_op",
    "save_checkpoint",
    "load_checkpoint",
]

#: Format marker stored in (and demanded of) every checkpoint file.
CHECKPOINT_FORMAT = "repro-checkpoint"

#: Current schema version; loaders reject checkpoints from a different one.
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """Raised for malformed/incompatible checkpoints (format, version, config)."""


def _query_description(query) -> dict:
    """Structural, serialisation-stable description of one query."""
    predicates = query.predicates
    return {
        "name": query.name,
        "pattern": list(query.pattern.event_types),
        "window": [query.window.size, query.window.slide],
        "aggregate": repr(query.aggregate),
        "equivalences": sorted(p.attribute for p in predicates.equivalences),
        "filters": sorted(
            [f.attribute, f.op, repr(f.value), f.event_type or ""] for f in predicates.filters
        ),
        "group_by": list(query.group_by),
    }


def workload_fingerprint(workload: Workload, plan: "SharingPlan | None" = None) -> str:
    """sha256 over the structural description of a workload and plan.

    Two (workload, plan) pairs fingerprint equal iff they compile to the
    same engine structure — query names, patterns, windows, aggregates,
    predicates, grouping, and the plan's sharing candidates.  Used to refuse
    resuming a checkpoint against a different workload.
    """
    description = {
        "queries": [_query_description(query) for query in workload],
        "plan": sorted(
            [list(candidate.pattern.event_types), list(candidate.query_names)]
            for candidate in (plan or SharingPlan())
        ),
    }
    return hashlib.sha256(canonical_json(description).encode("utf-8")).hexdigest()


def describe_churn_op(op) -> dict:
    """Structural, serialisation-stable description of one churn op.

    The replay runner pins ``[describe_churn_op(op) for op in schedule]``
    into ``engine_config["churn"]``, so :meth:`Checkpoint.validate_against`'s
    config equality refuses to resume a checkpoint under a different churn
    script — same mechanism that pins mode/columnar/compaction.  Attach ops
    describe their full query (via :func:`_query_description`); detach ops
    carry only the target name; an explicitly pinned plan is described by
    its candidates.
    """
    description: dict = {"op": op.kind, "at": op.at}
    if op.kind == "attach":
        description["query"] = _query_description(op.query)
    else:
        description["query"] = op.query_name
    if op.plan is not None:
        description["plan"] = sorted(
            [list(candidate.pattern.event_types), list(candidate.query_names)]
            for candidate in op.plan
        )
    return description


@dataclass
class Checkpoint:
    """One resumable snapshot of a replay in progress."""

    events_consumed: int
    last_timestamp: int
    workload_fingerprint: str
    engine_config: dict
    engine_state: dict
    format: str = CHECKPOINT_FORMAT
    version: int = CHECKPOINT_VERSION

    def as_payload(self) -> dict:
        """The checkpoint as a JSON-safe dict (file content)."""
        return {
            "format": self.format,
            "version": self.version,
            "events_consumed": self.events_consumed,
            "last_timestamp": self.last_timestamp,
            "workload_fingerprint": self.workload_fingerprint,
            "engine_config": self.engine_config,
            "engine_state": self.engine_state,
        }

    def validate_against(self, fingerprint: str, engine_config: dict) -> None:
        """Refuse resume when workload or engine configuration changed."""
        if self.workload_fingerprint != fingerprint:
            raise CheckpointError(
                "checkpoint was taken against a different workload/plan "
                f"(fingerprint {self.workload_fingerprint[:12]}… != {fingerprint[:12]}…)"
            )
        if self.engine_config != engine_config:
            raise CheckpointError(
                f"checkpoint engine config {self.engine_config} does not match "
                f"the resuming engine's config {engine_config}"
            )


def save_checkpoint(checkpoint: Checkpoint, path: "str | Path") -> Path:
    """Write a checkpoint file (canonical JSON, single object)."""
    path = Path(path)
    path.write_text(canonical_json(checkpoint.as_payload()) + "\n", encoding="utf-8")
    return path


def load_checkpoint(path: "str | Path") -> Checkpoint:
    """Read and validate a checkpoint file written by :func:`save_checkpoint`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise CheckpointError(f"{path} is not valid JSON: {error}") from None
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path} is not a {CHECKPOINT_FORMAT} file")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path} has checkpoint version {payload.get('version')!r}; "
            f"this loader understands version {CHECKPOINT_VERSION}"
        )
    return Checkpoint(
        events_consumed=payload["events_consumed"],
        last_timestamp=payload["last_timestamp"],
        workload_fingerprint=payload["workload_fingerprint"],
        engine_config=payload["engine_config"],
        engine_state=payload["engine_state"],
    )
