"""State hashing and trace diffing for deterministic replay debugging.

Every engine session can export its complete run state as a JSON-safe dict
(:meth:`~repro.executor.engine.EngineSession.export_state`).
:func:`state_hash` reduces that export to a sha256 over its canonical JSON
encoding — sorted keys, compact separators, NaN rejected — so two runs are
in the same state iff their hashes agree.  A :class:`ReplayTrace` records
one hash per timestamp batch; :func:`first_divergence` compares two traces
and pinpoints the first batch at which they disagree, which localises a
determinism bug to a single batch instead of a whole run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

__all__ = [
    "canonical_json",
    "state_hash",
    "TraceEntry",
    "ReplayTrace",
    "first_divergence",
]


def canonical_json(payload) -> str:
    """Deterministic JSON encoding: sorted keys, compact, NaN rejected.

    Python floats round-trip exactly through JSON (shortest-repr encoding),
    so equal states always encode to equal strings and vice versa.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def state_hash(session_or_state) -> str:
    """sha256 hex digest of a session's exported state.

    Accepts either a live engine session (anything with ``export_state()``)
    or an already-exported state dict.  The export excludes wall-clock time
    and memory measurements, so the hash is a pure function of the consumed
    stream, the workload, and the engine configuration.
    """
    state = session_or_state
    export = getattr(state, "export_state", None)
    if export is not None:
        state = export()
    return hashlib.sha256(canonical_json(state).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TraceEntry:
    """One trace sample: the state hash after one timestamp batch."""

    timestamp: int
    events_consumed: int
    state_hash: str

    def as_record(self) -> dict:
        """The entry as a JSON-safe dict (trace file line)."""
        return {
            "timestamp": self.timestamp,
            "events_consumed": self.events_consumed,
            "state_hash": self.state_hash,
        }


class ReplayTrace:
    """An ordered list of per-batch state hashes, persistable as JSONL."""

    def __init__(self, entries: Iterable[TraceEntry] = ()) -> None:
        self.entries: list[TraceEntry] = list(entries)

    def record(self, timestamp: int, events_consumed: int, session) -> TraceEntry:
        """Hash ``session``'s current state and append a trace entry."""
        entry = TraceEntry(timestamp, events_consumed, state_hash(session))
        self.entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def write(self, path: "str | Path") -> None:
        """Persist the trace as one JSON object per line."""
        with Path(path).open("w", encoding="utf-8") as handle:
            for entry in self.entries:
                handle.write(canonical_json(entry.as_record()) + "\n")

    @classmethod
    def read(cls, path: "str | Path") -> "ReplayTrace":
        """Load a trace written by :meth:`write`."""
        entries = []
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                record = json.loads(line)
                entries.append(
                    TraceEntry(record["timestamp"], record["events_consumed"], record["state_hash"])
                )
        return cls(entries)


def first_divergence(a: ReplayTrace, b: ReplayTrace) -> Optional[dict]:
    """Locate the first batch at which two traces disagree.

    Returns ``None`` when the traces are identical; otherwise a dict with
    the diverging ``index`` and both entries (``None`` for the shorter
    trace past its end).  Comparing per-batch hashes localises a
    determinism bug to the first offending batch — from there,
    ``export_state()`` of both runs at that point can be diffed directly.
    """
    for index, (entry_a, entry_b) in enumerate(zip(a.entries, b.entries)):
        if entry_a != entry_b:
            return {"index": index, "a": entry_a, "b": entry_b}
    if len(a.entries) != len(b.entries):
        index = min(len(a.entries), len(b.entries))
        longer_a = a.entries[index] if index < len(a.entries) else None
        longer_b = b.entries[index] if index < len(b.entries) else None
        return {"index": index, "a": longer_a, "b": longer_b}
    return None
