"""ReplayRunner: feed a recorded event log through the engine, reproducibly.

The runner wraps a :class:`~repro.executor.engine.StreamingEngine` in the
stepwise session API so that pacing, tracing, and checkpointing interleave
with the batch loop:

* events enter through the engine's normal ingestion path — columnar
  micro-batches or scalar ``timestamp_batches`` — so a replayed run takes
  exactly the code path a live run would;
* pacing (``realtime`` or ``Nx``) sleeps between timestamp batches with the
  metrics timer paused, so throughput numbers measure engine work, not
  sleep time;
* every ``checkpoint_every`` batches the session state is snapshotted to a
  checkpoint file; resuming from one and consuming the rest of the log is
  byte-identical to a full replay (the replay determinism suite pins this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path
from typing import Iterable, Optional

from ..core.benefit import BenefitModel
from ..core.optimizer import SharonOptimizer
from ..core.plan import SharingPlan
from ..events.event import Event
from ..events.log import EventLogReader
from ..events.stream import EventStream
from ..executor.churn import ChurnOp, ChurnSchedule
from ..executor.engine import ExecutionReport, StreamingEngine
from ..queries.workload import Workload
from ..utils.rates import RateCatalog
from .checkpoint import (
    Checkpoint,
    CheckpointError,
    describe_churn_op,
    load_checkpoint,
    save_checkpoint,
    workload_fingerprint,
)
from .trace import ReplayTrace, state_hash

__all__ = ["ReplayRunner", "ReplayReport"]


def _parse_speed(speed: "str | float | int") -> float:
    """Normalise a speed spec to a sleep factor (seconds per stream time unit).

    ``"instant"`` (or any non-positive multiplier) means no pacing;
    ``"realtime"`` is one second per time unit; ``"4x"``/``4`` replays four
    stream time units per wall-clock second.
    """
    if isinstance(speed, str):
        text = speed.strip().lower()
        if text == "instant":
            return 0.0
        if text == "realtime":
            return 1.0
        if text.endswith("x"):
            text = text[:-1]
        try:
            multiplier = float(text)
        except ValueError:
            raise ValueError(
                f"unsupported replay speed {speed!r} (use 'instant', 'realtime', or e.g. '4x')"
            ) from None
    else:
        multiplier = float(speed)
    if multiplier <= 0:
        return 0.0
    return 1.0 / multiplier


@dataclass
class ReplayReport:
    """Everything one replay produced, beyond the engine's own report."""

    report: ExecutionReport
    #: sha256 of the session's final exported state (results + counters +
    #: residual engine state); two replays of the same log agree iff equal.
    state_hash: str
    #: Events consumed by this run (excludes events skipped by a resume).
    events_replayed: int
    #: Timestamp batches processed by this run.
    batches: int
    #: Checkpoint files written during the run, in write order.
    checkpoints: list[Path] = field(default_factory=list)
    #: Per-batch state-hash trace (only when tracing was requested).
    trace: Optional[ReplayTrace] = None

    @property
    def results(self):
        """The engine's result set (convenience passthrough)."""
        return self.report.results

    @property
    def metrics(self):
        """The engine's run metrics (convenience passthrough)."""
        return self.report.metrics


class ReplayRunner:
    """Replays recorded event logs through a deterministic engine.

    Parameters
    ----------
    workload:
        The uniform workload to evaluate (must match the one used when any
        checkpoint being resumed was taken; enforced via fingerprint).
    plan:
        Sharing plan to execute under.  When omitted, a plan is optimized
        from ``rates`` if given, else the empty plan is used (Non-Shared
        evaluation — still deterministic, just unshared).
    rates:
        Rate catalog used to optimize when no plan is given.
    compaction / panes / columnar / memory_sample_interval:
        Engine toggles, with :class:`~repro.executor.shared.SharonExecutor`
        semantics.  They are part of the determinism contract: checkpoints
        record them and refuse to resume under a different configuration.
    max_lateness / late_policy:
        Bounded-lateness disorder tolerance (``docs/disorder.md``): with
        ``max_lateness`` set the log is read in recorded *arrival* order and
        reordered through the engine's watermark-driven buffer, and
        checkpoints snapshot the buffer (so ``events_consumed`` counts log
        events read, including ones still held).  Also part of the
        determinism contract recorded into checkpoints.
    backend:
        Numeric kernel backend (:mod:`repro.executor.kernels`).  Deliberately
        *not* part of the determinism contract: backends are bit-identical by
        construction, so a checkpoint written under one backend restores
        under any other (and the snapshot bytes match).
    churn:
        Optional :class:`~repro.executor.churn.ChurnSchedule` (or ops to
        build one from) of timestamped attach/detach operations
        (``docs/churn.md``), applied deterministically at batch boundaries
        exactly as :meth:`StreamingEngine.run` would.  Part of the
        determinism contract: the full schedule is pinned into
        ``engine_config`` (so resuming under a different script is refused)
        and the applied-op history travels in every snapshot (so resume
        re-applies the checkpoint's churn prefix before restoring state).

    Sharded execution is intentionally not supported here: replay targets
    the in-process engine whose state is fully snapshotable; sharded crash
    recovery composes on top of per-shard logs (see ROADMAP).
    """

    def __init__(
        self,
        workload: Workload,
        plan: "SharingPlan | None" = None,
        rates: "RateCatalog | BenefitModel | None" = None,
        name: str = "Replay",
        compaction: bool = True,
        panes: bool = False,
        columnar: bool = True,
        memory_sample_interval: int = 0,
        max_lateness: "int | None" = None,
        late_policy="raise",
        backend: str = "python",
        churn: "ChurnSchedule | Iterable[ChurnOp] | None" = None,
    ) -> None:
        if plan is None:
            plan = (
                SharonOptimizer(rates).optimize(workload).plan if rates is not None else SharingPlan()
            )
        if churn is None:
            churn = ChurnSchedule()
        elif not isinstance(churn, ChurnSchedule):
            churn = ChurnSchedule(churn)
        self.workload = workload
        self.plan = plan
        self.churn = churn
        self.engine = StreamingEngine(
            workload,
            plan=plan,
            name=name,
            memory_sample_interval=memory_sample_interval,
            compaction=compaction,
            panes=panes,
            columnar=columnar,
            max_lateness=max_lateness,
            late_policy=late_policy,
            backend=backend,
        )
        self.fingerprint = workload_fingerprint(workload, plan)

    @property
    def engine_config(self) -> dict:
        """The toggle set recorded into (and validated against) checkpoints."""
        engine = self.engine
        late_policy = engine.late_policy
        # The kernel backend is intentionally absent: backends produce
        # bit-identical state, so checkpoints are backend-agnostic and may
        # be restored under either one.
        config = {
            "mode": "panes" if engine.uses_panes else "instances",
            "columnar": engine.columnar,
            "compaction": engine.compaction,
            "max_lateness": engine.max_lateness,
            # Callables cannot be serialised; any side channel records as
            # "callback" (resuming requires a callback policy again, though
            # not the same function object).
            "late_policy": late_policy if isinstance(late_policy, str) else "callback",
        }
        # Only churned runs record a churn key, so pre-churn checkpoints keep
        # validating against churn-free runners unchanged.
        if self.churn:
            config["churn"] = [describe_churn_op(op) for op in self.churn]
        return config

    # -- source handling ---------------------------------------------------------
    @staticmethod
    def _event_source(source, skip: int) -> Iterable[Event]:
        """Resolve a replay source to an event iterable, skipping ``skip`` events."""
        if isinstance(source, (str, Path)):
            source = EventLogReader(source)
        if isinstance(source, EventLogReader):
            return source.events_from(skip)
        if skip:
            return islice(iter(source), skip, None)
        return source

    def _reapply_churn_prefix(self, session, checkpoint: Checkpoint) -> int:
        """Re-apply the checkpoint's applied-churn history on a fresh session.

        Returns the index of the first schedule op still pending.  Every
        history entry must match the runner's schedule op (kind, effective
        timestamp, query name) and, once applied, reproduce the recorded
        history entry byte for byte — including the fingerprint of the
        recompiled workload+plan — else the checkpoint belongs to a
        different churn script and resume is refused.
        """
        history = (checkpoint.engine_state.get("churn") or {}).get("history", [])
        ops = self.churn.ops
        if len(history) > len(ops):
            raise CheckpointError(
                f"checkpoint had applied {len(history)} churn ops but this "
                f"runner's schedule only has {len(ops)}"
            )
        for index, entry in enumerate(history):
            op = ops[index]
            if (entry.get("op"), entry.get("at"), entry.get("query")) != (
                op.kind,
                op.at,
                op.query_name,
            ):
                raise CheckpointError(
                    f"checkpoint churn history entry #{index} {entry!r} does not "
                    f"match schedule op {op.kind}@{op.at}:{op.query_name}"
                )
            session.apply_churn_op(op)
            applied = session.churn_history()[-1]
            if applied != entry:
                raise CheckpointError(
                    f"re-applying churn op #{index} produced {applied!r}, but the "
                    f"checkpoint recorded {entry!r}; the workloads or plans differ"
                )
        return len(history)

    # -- the run loop -------------------------------------------------------------
    def run(
        self,
        source: "str | Path | EventLogReader | EventStream | Iterable[Event]",
        speed: "str | float" = "instant",
        checkpoint_every: int = 0,
        checkpoint_dir: "str | Path | None" = None,
        resume_from: "str | Path | Checkpoint | None" = None,
        trace: "ReplayTrace | bool | None" = None,
        on_batch=None,
    ) -> ReplayReport:
        """Replay ``source`` to completion and report results + state hash.

        Parameters
        ----------
        source:
            An event-log path, an open :class:`~repro.events.log.EventLogReader`,
            an :class:`~repro.events.stream.EventStream`, or any
            timestamp-ordered event iterable.
        speed:
            ``"instant"`` (default), ``"realtime"``, or an ``Nx`` multiplier
            (``"4x"``, ``2.5``): sleeps between timestamp batches so stream
            time advances N units per wall-clock second.  Sleeping happens
            with the metrics timer paused.
        checkpoint_every:
            Write a checkpoint after every N timestamp batches (0 disables).
            Requires ``checkpoint_dir``.
        checkpoint_dir:
            Directory for ``checkpoint-<events>.json`` files (created if
            missing).
        resume_from:
            A checkpoint (object or file path) to restore before consuming
            the rest of the log; its fingerprint and engine config must
            match this runner's.
        trace:
            ``True`` (record a fresh :class:`~repro.replay.trace.ReplayTrace`)
            or an existing trace to append to.  Hashing the full state every
            batch is expensive — it is a debugging tool, not a fast path.
        on_batch:
            Optional callback forwarded to the engine loop semantics:
            ``on_batch(timestamp, batch_events)`` after each processed batch
            (timer paused).
        """
        engine = self.engine
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if checkpoint_every and checkpoint_dir is None:
            raise ValueError("checkpoint_every needs a checkpoint_dir")

        session = engine.new_session()
        ops = self.churn.ops
        op_index = 0
        events_consumed = 0
        if resume_from is not None:
            checkpoint = (
                resume_from
                if isinstance(resume_from, Checkpoint)
                else load_checkpoint(resume_from)
            )
            checkpoint.validate_against(self.fingerprint, self.engine_config)
            # Snapshots restore structurally, so the churn prefix the
            # checkpointed session had applied (recompiled workloads, plan,
            # emission gates) must be re-applied on the fresh session first;
            # each re-applied op is verified against the snapshot's history.
            op_index = self._reapply_churn_prefix(session, checkpoint)
            session.restore_state(checkpoint.engine_state)
            events_consumed = checkpoint.events_consumed

        replay_trace: "ReplayTrace | None"
        if trace is True:
            replay_trace = ReplayTrace()
        else:
            replay_trace = trace or None

        if checkpoint_dir is not None:
            checkpoint_dir = Path(checkpoint_dir)
            checkpoint_dir.mkdir(parents=True, exist_ok=True)

        sleep_per_unit = _parse_speed(speed)
        events = self._event_source(source, events_consumed)
        skipped = events_consumed
        # With max_lateness configured the session wraps the log in its
        # reorder feed; events_consumed then counts *log* events read
        # (including ones still buffered), which pairs with the buffer
        # snapshot inside the session export to make checkpoints exact.
        stream = session.ingest(events)
        feed = stream if stream is not events else None
        collector = session.collector
        checkpoints: list[Path] = []
        batches = 0
        # Pacing runs on an absolute schedule anchored at the first paced
        # batch: a batch at stream time t is due at
        # ``origin_clock + (t - origin_timestamp) * sleep_per_unit``, so the
        # sleep shrinks by however long processing the previous batches took
        # (clamped at 0) instead of drifting later by it.
        origin_timestamp: "int | None" = None
        origin_clock = 0.0

        def apply_due_churn(timestamp: int) -> None:
            # Fires before each batch is routed, so an op recompiles the
            # workload in time to route its own trigger batch (matching
            # StreamingEngine.run's churn hook exactly).
            nonlocal op_index
            while op_index < len(ops) and ops[op_index].at <= timestamp:
                session.apply_churn_op(ops[op_index])
                op_index += 1

        collector.start()
        routed = engine.routed_batches(
            stream, collector, before_batch=apply_due_churn if ops else None
        )
        for timestamp, batch, groups in routed:
            if sleep_per_unit:
                if origin_timestamp is None:
                    origin_timestamp = timestamp
                    origin_clock = time.perf_counter()
                else:
                    due_in = (timestamp - origin_timestamp) * sleep_per_unit - (
                        time.perf_counter() - origin_clock
                    )
                    if due_in > 0:
                        collector.stop()
                        time.sleep(due_in)
                        collector.start()

            session.step(timestamp, groups)
            if feed is not None:
                events_consumed = skipped + feed.source_consumed
            else:
                events_consumed += len(batch)
            batches += 1

            if on_batch is not None:
                collector.stop()
                on_batch(timestamp, list(batch) if engine.columnar else batch)
                collector.start()

            if replay_trace is not None:
                collector.stop()
                replay_trace.record(timestamp, events_consumed, session)
                collector.start()

            if checkpoint_every and batches % checkpoint_every == 0:
                collector.stop()
                path = checkpoint_dir / f"checkpoint-{events_consumed:09d}.json"
                save_checkpoint(
                    Checkpoint(
                        events_consumed=events_consumed,
                        last_timestamp=timestamp,
                        workload_fingerprint=self.fingerprint,
                        engine_config=self.engine_config,
                        engine_state=session.export_state(),
                    ),
                    path,
                )
                checkpoints.append(path)
                collector.start()

        while op_index < len(ops):
            session.apply_churn_op(ops[op_index])
            op_index += 1
        report = session.finish()
        final_hash = state_hash(session)
        return ReplayReport(
            report=report,
            state_hash=final_hash,
            events_replayed=events_consumed - skipped,
            batches=batches,
            checkpoints=checkpoints,
            trace=replay_trace,
        )
