"""Experiment scenarios, figure runners, and plain-text rendering."""

from .bench import (
    BenchRecord,
    SCALE_FACTORS,
    dense_sharing_scenario,
    run_engine_benchmark,
    scaling_scenario,
    write_bench_json,
)
from .figures import (
    FigureResult,
    run_all_figures,
    run_figure13,
    run_figure14_events,
    run_figure14_lengths,
    run_figure14_queries,
    run_figure15,
    run_figure16,
)
from .render import format_bar_chart, format_ratio, format_table
from .scenarios import (
    EXECUTOR_NAMES,
    ExecutorRun,
    dense_scenario,
    ec_scenario,
    greedy_plan,
    lr_scenario,
    optimize,
    run_executor,
    tx_scenario,
)

__all__ = [
    "BenchRecord",
    "SCALE_FACTORS",
    "dense_sharing_scenario",
    "run_engine_benchmark",
    "scaling_scenario",
    "write_bench_json",
    "FigureResult",
    "run_all_figures",
    "run_figure13",
    "run_figure14_events",
    "run_figure14_lengths",
    "run_figure14_queries",
    "run_figure15",
    "run_figure16",
    "format_bar_chart",
    "format_ratio",
    "format_table",
    "EXECUTOR_NAMES",
    "ExecutorRun",
    "dense_scenario",
    "ec_scenario",
    "greedy_plan",
    "lr_scenario",
    "optimize",
    "run_executor",
    "tx_scenario",
]
