"""Benchmark scenarios: workload/stream pairs for the evaluation sweeps.

The paper's evaluation (Section 8.1) varies three cost factors — events per
window, number of queries, and pattern length — over three data sets (TX, LR,
EC).  The scenario builders here produce workload/stream pairs with the same
structure at a configurable, laptop-friendly scale.  They are used both by
the ``benchmarks/`` suite (one module per figure) and by the
``examples/reproduce_figures.py`` script.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..core.optimizer import GreedyOptimizer, SharonOptimizer
from ..core.plan import SharingPlan
from ..datasets.linear_road import LinearRoadConfig, generate_linear_road_stream
from ..datasets.synthetic import ChainConfig, chain_stream, chain_workload
from ..events.stream import EventStream
from ..events.windows import SlidingWindow
from ..executor.aseq import ASeqExecutor
from ..executor.engine import ExecutionReport
from ..executor.shared import SharonExecutor
from ..executor.twostep import FlinkLikeExecutor, SpassLikeExecutor
from ..queries.workload import Workload
from ..utils.rates import RateCatalog

__all__ = [
    "ExecutorRun",
    "lr_scenario",
    "tx_scenario",
    "ec_scenario",
    "dense_scenario",
    "optimize",
    "greedy_plan",
    "run_executor",
    "EXECUTOR_NAMES",
]


@dataclass
class ExecutorRun:
    """One executor measurement reduced to the metrics the figures plot."""

    name: str
    latency_ms: float
    throughput: float
    memory_bytes: int
    #: All latency samples when the run came from a best-of-N harness
    #: (empty for single-shot runs); ``latency_ms`` is then the minimum.
    latency_samples_ms: tuple[float, ...] = ()

    @classmethod
    def from_report(cls, report: ExecutionReport) -> "ExecutorRun":
        return cls(
            name=report.metrics.executor_name,
            latency_ms=report.metrics.avg_latency_ms,
            throughput=report.metrics.throughput_events_per_second,
            memory_bytes=report.metrics.peak_memory_bytes,
        )

    @property
    def latency_spread(self) -> dict[str, float]:
        """Min/median over the recorded samples (noise visibility in records)."""
        samples = self.latency_samples_ms or (self.latency_ms,)
        return {"min": min(samples), "median": statistics.median(samples)}


def lr_scenario(
    num_queries: int = 20,
    pattern_length: int = 6,
    events_per_second: float = 30.0,
    duration: int = 120,
    num_segments: int = 20,
    window: SlidingWindow | None = None,
    seed: int = 101,
) -> tuple[Workload, EventStream]:
    """Linear-Road-style scenario: route queries over expressway segments."""
    window = window or SlidingWindow(size=40, slide=20)
    chain = ChainConfig(num_event_types=num_segments, type_prefix="Seg", entity_attribute="car")
    workload = chain_workload(
        num_queries,
        pattern_length,
        config=chain,
        window=window,
        seed=seed,
        offset_pool_size=max(2, num_queries // 5),
    )
    config = LinearRoadConfig(
        num_segments=num_segments,
        num_cars=50,
        duration_seconds=duration,
        initial_rate=events_per_second,
        final_rate=events_per_second,
        seed=seed + 1,
    )
    return workload, generate_linear_road_stream(config)


def tx_scenario(
    num_queries: int = 20,
    pattern_length: int = 6,
    events_per_second: float = 30.0,
    duration: int = 120,
    window: SlidingWindow | None = None,
    seed: int = 201,
) -> tuple[Workload, EventStream]:
    """Taxi-style scenario built on the synthetic chain walker.

    The TX figures vary events per window and the number of queries; the
    chain generator gives precise control over both while keeping the same
    structure (vehicles moving along street sequences).
    """
    window = window or SlidingWindow(size=40, slide=20)
    chain = ChainConfig(num_event_types=16, type_prefix="St", entity_attribute="vehicle")
    workload = chain_workload(
        num_queries,
        pattern_length,
        config=chain,
        window=window,
        seed=seed,
        offset_pool_size=max(2, num_queries // 5),
    )
    stream = chain_stream(
        duration=duration,
        events_per_second=events_per_second,
        config=chain,
        num_entities=40,
        seed=seed + 1,
    )
    return workload, stream


def ec_scenario(
    num_queries: int = 20,
    pattern_length: int = 8,
    events_per_second: float = 30.0,
    duration: int = 120,
    num_items: int = 30,
    window: SlidingWindow | None = None,
    seed: int = 301,
) -> tuple[Workload, EventStream]:
    """E-commerce scenario: purchase-sequence queries over the item catalogue."""
    window = window or SlidingWindow(size=40, slide=20)
    chain = ChainConfig(
        num_event_types=num_items, type_prefix="Item", entity_attribute="customer"
    )
    workload = chain_workload(
        num_queries,
        pattern_length,
        config=chain,
        window=window,
        seed=seed,
        offset_pool_size=max(2, num_queries // 4),
    )
    stream = chain_stream(
        duration=duration,
        events_per_second=events_per_second,
        config=chain,
        num_entities=20,
        advance_probability=0.85,
        seed=seed + 1,
    )
    return workload, stream


def dense_scenario(
    events_per_second: float,
    num_queries: int = 7,
    pattern_length: int = 3,
    num_types: int = 6,
    num_entities: int = 3,
    duration: int = 60,
    window: SlidingWindow | None = None,
    seed: int = 131,
) -> tuple[Workload, EventStream]:
    """A scenario whose windows hold many events of every type per group.

    This is the regime in which the number of matched sequences is polynomial
    in the window content, i.e. where the two-step baselines collapse
    (Figure 13); the online approaches are unaffected.
    """
    window = window or SlidingWindow(size=30, slide=15)
    chain = ChainConfig(num_event_types=num_types, type_prefix="Seg", entity_attribute="car")
    workload = chain_workload(
        num_queries,
        pattern_length,
        config=chain,
        window=window,
        seed=seed,
        offset_pool_size=3,
    )
    stream = chain_stream(
        duration=duration,
        events_per_second=events_per_second,
        config=chain,
        num_entities=num_entities,
        advance_probability=0.6,
        seed=seed + 1,
    )
    return workload, stream


def optimize(workload: Workload, stream: EventStream, expand: bool = False) -> SharingPlan:
    """The Sharon optimizer's plan for a workload (with a safety time budget)."""
    rates = RateCatalog.from_stream(stream, per="time-unit")
    result = SharonOptimizer(rates, expand=expand, time_budget_seconds=5.0).optimize(workload)
    return result.plan


def greedy_plan(workload: Workload, stream: EventStream) -> SharingPlan:
    """The GWMIN (greedy optimizer) plan for a workload."""
    rates = RateCatalog.from_stream(stream, per="time-unit")
    return GreedyOptimizer(rates).optimize(workload).plan


_EXECUTOR_FACTORIES = {
    "Sharon": lambda workload, plan, mem: SharonExecutor(
        workload, plan=plan, memory_sample_interval=mem
    ),
    "A-Seq": lambda workload, plan, mem: ASeqExecutor(workload, memory_sample_interval=mem),
    "Flink-like": lambda workload, plan, mem: FlinkLikeExecutor(
        workload, memory_sample_interval=mem
    ),
    "SPASS-like": lambda workload, plan, mem: SpassLikeExecutor(
        workload, plan=plan, memory_sample_interval=mem
    ),
}

#: Names accepted by :func:`run_executor`, in the order Figure 3 lists them.
EXECUTOR_NAMES = tuple(_EXECUTOR_FACTORIES)


def run_executor(
    name: str,
    workload: Workload,
    stream: EventStream,
    plan: SharingPlan | None = None,
    memory_sample_interval: int = 8,
) -> ExecutorRun:
    """Run one named executor over a scenario and reduce it to figure metrics."""
    if name not in _EXECUTOR_FACTORIES:
        raise ValueError(f"unknown executor {name!r}; choose from {EXECUTOR_NAMES}")
    factory = _EXECUTOR_FACTORIES[name]
    executor = factory(workload, plan if plan is not None else SharingPlan(), memory_sample_interval)
    report = executor.run(stream)
    return ExecutorRun.from_report(report)
