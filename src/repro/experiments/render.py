"""Plain-text rendering of experiment results (tables and bar charts).

The paper presents its evaluation as figures; this reproduction renders the
same series as ASCII tables and horizontal bar charts so that the
``examples/reproduce_figures.py`` script (and the benchmark summaries in
``EXPERIMENTS.md``) can show paper-style comparisons without any plotting
dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_bar_chart", "format_ratio"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a simple aligned ASCII table.

    Examples
    --------
    >>> print(format_table(["x", "y"], [[1, 2.5], [10, 3.25]]))
    x   | y
    ----+-----
    1   | 2.5
    10  | 3.25
    """
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells)).rstrip()

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line([str(h) for h in headers]))
    lines.append(separator)
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
    title: str | None = None,
    log_note: bool = False,
) -> str:
    """Render a horizontal bar chart of label -> value.

    The longest bar spans ``width`` characters; values are printed next to
    the bars.  ``log_note`` appends a reminder that the paper's corresponding
    figure uses a logarithmic axis.
    """
    if not values:
        return "(no data)"
    label_width = max(len(label) for label in values)
    maximum = max(values.values())
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        if maximum > 0:
            bar = "#" * max(1, round(value / maximum * width)) if value > 0 else ""
        else:
            bar = ""
        lines.append(f"{label.ljust(label_width)} | {bar} {_format_cell(value)}{unit}")
    if log_note:
        lines.append("(the corresponding figure in the paper uses a log-scale axis)")
    return "\n".join(lines)


def format_ratio(numerator: float, denominator: float, suffix: str = "x") -> str:
    """Format a speed-up / blow-up ratio defensively (no division by zero)."""
    if denominator <= 0:
        return "n/a"
    return f"{numerator / denominator:.2f}{suffix}"


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    if isinstance(value, int) and abs(value) >= 1000:
        return f"{value:,}"
    return str(value)
