"""Runners regenerating the paper's evaluation figures at configurable scale.

Each ``run_figure*`` function sweeps the parameter the corresponding figure
varies, executes the relevant approaches, and returns a :class:`FigureResult`
holding the measured series plus a ready-to-print text rendering.  The
``benchmarks/`` suite uses the same scenarios through pytest-benchmark; these
runners exist so the figures can also be reproduced directly
(``examples/reproduce_figures.py`` or ``python -m repro.experiments``)
without pytest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.optimizer import ExhaustiveOptimizer, GreedyOptimizer, SharonOptimizer
from ..events.windows import SlidingWindow
from ..executor.shared import SharonExecutor
from ..utils.rates import RateCatalog
from .render import format_table
from .scenarios import (
    dense_scenario,
    ec_scenario,
    greedy_plan,
    lr_scenario,
    optimize,
    run_executor,
    tx_scenario,
)

__all__ = [
    "FigureResult",
    "run_figure13",
    "run_figure14_events",
    "run_figure14_queries",
    "run_figure14_lengths",
    "run_figure15",
    "run_figure16",
    "run_all_figures",
]


@dataclass
class FigureResult:
    """Measured series of one reproduced figure."""

    figure: str
    description: str
    parameter_name: str
    parameter_values: list
    series: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def add(self, approach: str, metric: str, value: float) -> None:
        metric_series = self.series.setdefault(approach, {})
        metric_series.setdefault(metric, []).append(value)

    def metric_table(self, metric: str) -> str:
        """Render one metric of all approaches as an ASCII table."""
        headers = [self.parameter_name] + list(self.series)
        rows = []
        for index, parameter in enumerate(self.parameter_values):
            row = [parameter]
            for approach in self.series:
                values = self.series[approach].get(metric, [])
                row.append(values[index] if index < len(values) else None)
            rows.append(row)
        return format_table(headers, rows, title=f"{self.figure} — {metric} ({self.description})")

    def render(self) -> str:
        metrics = sorted({m for per_approach in self.series.values() for m in per_approach})
        return "\n\n".join(self.metric_table(metric) for metric in metrics)


def run_figure13(rates=(4.0, 8.0, 16.0), seed: int = 131) -> FigureResult:
    """Figure 13: two-step vs. online approaches vs. events per window (LR)."""
    result = FigureResult(
        figure="Figure 13",
        description="two-step vs online, Linear-Road-style dense windows",
        parameter_name="events/window",
        parameter_values=[rate * 30 for rate in rates],
    )
    for rate in rates:
        workload, stream = dense_scenario(events_per_second=rate, seed=seed)
        plan = optimize(workload, stream)
        for approach in ("Flink-like", "SPASS-like", "A-Seq", "Sharon"):
            run = run_executor(approach, workload, stream, plan)
            result.add(approach, "latency_ms", round(run.latency_ms, 2))
            result.add(approach, "throughput_ev_per_s", round(run.throughput, 1))
    return result


def run_figure14_events(rates=(10.0, 20.0, 40.0), seed: int = 141) -> FigureResult:
    """Figure 14(a,e): online approaches vs. events per window (TX)."""
    window = SlidingWindow(size=40, slide=20)
    result = FigureResult(
        figure="Figure 14(a,e)",
        description="online approaches vs events per window, taxi-style",
        parameter_name="events/window",
        parameter_values=[rate * window.size for rate in rates],
    )
    for rate in rates:
        workload, stream = tx_scenario(
            num_queries=16, pattern_length=6, events_per_second=rate, duration=100,
            window=window, seed=seed,
        )
        plan = optimize(workload, stream)
        for approach in ("Sharon", "A-Seq"):
            run = run_executor(approach, workload, stream, plan)
            result.add(approach, "latency_ms", round(run.latency_ms, 2))
            result.add(approach, "throughput_ev_per_s", round(run.throughput, 1))
    return result


def run_figure14_queries(query_counts=(8, 16, 32), seed: int = 143) -> FigureResult:
    """Figure 14(b,f,d): online approaches vs. number of queries, incl. memory (LR)."""
    result = FigureResult(
        figure="Figure 14(b,f,d)",
        description="online approaches vs number of queries, Linear-Road-style",
        parameter_name="queries",
        parameter_values=list(query_counts),
    )
    for num_queries in query_counts:
        workload, stream = lr_scenario(
            num_queries=num_queries, pattern_length=6, events_per_second=20.0,
            duration=100, seed=seed,
        )
        plan = optimize(workload, stream)
        for approach in ("Sharon", "A-Seq"):
            run = run_executor(approach, workload, stream, plan, memory_sample_interval=4)
            result.add(approach, "latency_ms", round(run.latency_ms, 2))
            result.add(approach, "throughput_ev_per_s", round(run.throughput, 1))
            result.add(approach, "peak_memory_kib", round(run.memory_bytes / 1024, 1))
    return result


def run_figure14_lengths(lengths=(4, 8, 12), seed: int = 147) -> FigureResult:
    """Figure 14(c,g,h): online approaches vs. pattern length, incl. memory (EC)."""
    result = FigureResult(
        figure="Figure 14(c,g,h)",
        description="online approaches vs pattern length, e-commerce-style",
        parameter_name="pattern length",
        parameter_values=list(lengths),
    )
    for length in lengths:
        workload, stream = ec_scenario(
            num_queries=16, pattern_length=length, events_per_second=20.0,
            duration=100, num_items=30, seed=seed,
        )
        plan = optimize(workload, stream)
        for approach in ("Sharon", "A-Seq"):
            run = run_executor(approach, workload, stream, plan, memory_sample_interval=4)
            result.add(approach, "latency_ms", round(run.latency_ms, 2))
            result.add(approach, "throughput_ev_per_s", round(run.throughput, 1))
            result.add(approach, "peak_memory_kib", round(run.memory_bytes / 1024, 1))
    return result


def run_figure15(query_counts=(4, 8, 12), seed: int = 151) -> FigureResult:
    """Figure 15: Sharon optimizer vs. greedy vs. exhaustive optimizer (EC).

    Conflict-resolution expansion (Section 7.1) is disabled here so that the
    exhaustive sweep stays feasible; its cost/benefit is measured by the
    expansion ablation benchmark instead.
    """
    result = FigureResult(
        figure="Figure 15",
        description="optimizer latency / plan score vs number of queries",
        parameter_name="queries",
        parameter_values=list(query_counts),
    )
    for num_queries in query_counts:
        workload, stream = ec_scenario(
            num_queries=num_queries, pattern_length=5, events_per_second=15.0,
            duration=60, num_items=40, seed=seed,
        )
        rates = RateCatalog.from_stream(stream, per="time-unit")
        optimizers = {
            "Greedy": GreedyOptimizer(rates),
            "Sharon": SharonOptimizer(rates, expand=False, time_budget_seconds=10.0),
            "Exhaustive": ExhaustiveOptimizer(rates, expand=False, max_candidates=22),
        }
        for name, optimizer in optimizers.items():
            try:
                outcome = optimizer.optimize(workload)
            except RuntimeError:
                result.add(name, "latency_ms", float("nan"))
                result.add(name, "plan_score", float("nan"))
                continue
            result.add(name, "latency_ms", round(outcome.total_seconds * 1000, 3))
            result.add(name, "plan_score", round(outcome.plan.score, 1))
            result.add(name, "peak_memory_kib", round(outcome.peak_bytes / 1024, 1))
    return result


def run_figure16(query_counts=(12, 24), seed: int = 161) -> FigureResult:
    """Figure 16: executor guided by a greedy vs. an optimal plan (TX)."""
    result = FigureResult(
        figure="Figure 16",
        description="executor under greedy vs optimal plan",
        parameter_name="queries",
        parameter_values=list(query_counts),
    )
    for num_queries in query_counts:
        workload, stream = tx_scenario(
            num_queries=num_queries, pattern_length=6, events_per_second=20.0,
            duration=100, seed=seed,
        )
        plans = {
            "greedy plan": greedy_plan(workload, stream),
            "optimal plan": optimize(workload, stream),
        }
        for label, plan in plans.items():
            report = SharonExecutor(workload, plan=plan, memory_sample_interval=4).run(stream)
            result.add(label, "latency_ms", round(report.metrics.avg_latency_ms, 2))
            result.add(label, "peak_memory_kib", round(report.metrics.peak_memory_bytes / 1024, 1))
            result.add(label, "plan_score", round(plan.score, 1))
    return result


def run_all_figures(quick: bool = True) -> list[FigureResult]:
    """Run every figure experiment; ``quick`` shrinks the sweeps further."""
    if quick:
        return [
            run_figure13(rates=(4.0, 8.0)),
            run_figure14_events(rates=(10.0, 20.0)),
            run_figure14_queries(query_counts=(8, 16)),
            run_figure14_lengths(lengths=(4, 8)),
            run_figure15(query_counts=(4, 8)),
            run_figure16(query_counts=(12,)),
        ]
    return [
        run_figure13(),
        run_figure14_events(),
        run_figure14_queries(),
        run_figure14_lengths(),
        run_figure15(),
        run_figure16(),
    ]
