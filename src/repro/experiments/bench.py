"""Engine throughput benchmark: the repository's performance trajectory.

Every PR must be able to prove it did not regress the hot path, so this
module defines one *canonical, headless* benchmark of the shared online
engine and a machine-readable result file (``BENCH_engine.json``) that CI and
future sessions can diff:

* **Stream scaling** — the Fig. 13/14 cost driver is events per window.  The
  ``scale`` scenarios multiply the stream rate (and hence the stream length
  and the per-window density) by 1×, 4×, and 16×; a linear engine keeps its
  events/sec roughly flat while a quadratic one collapses by the scale
  factor.
* **Dense sharing** — the Fig. 13 regime: a dense multi-query workload where
  the shared online method (Sharon) must beat the non-shared online baseline
  (A-Seq).
* **Cohort compaction** — the long-window regime where all anchor cohorts
  collapse; recorded as the ``cohort_compaction`` section.
* **Pane sharing** — the small-slide regime (overlap factor 20) where the
  pane-partitioned engine mode must beat per-instance fan-out; recorded as
  the ``pane_sharing`` section.
* **Columnar routing** — the routing-bound regime (many event types, many
  groups, highly selective predicates: per-event routing overhead dominates)
  where columnar micro-batch ingestion must beat the scalar per-event path;
  recorded as the ``columnar_routing`` section.  Best-of-N, so the columnar
  side is measured warm — the stream's per-layout column cache is built on
  the first run, which is the ingestion cost model of a columnar source
  (columns are extracted once, however many runs or workloads consume them).

* **Sharded groups** — the many-group regime (dozens of independent groups)
  where group-sharded process fan-out
  (:class:`~repro.executor.sharding.ShardedEngine`) must beat the in-process
  engine on multi-core machines; recorded as the ``sharded_groups`` section
  together with the shard plan's shape and the measuring machine's CPU
  count (the win is parallelism, so single-core runs record a ratio near or
  below 1× and the gate skips the speedup assertion there).

* **Deterministic replay** — the dense-sharing stream recorded to a durable
  JSONL event log and replayed through
  :class:`~repro.replay.runner.ReplayRunner`; recorded as the ``replay``
  section with the log's size and write throughput, replay vs live
  throughput, the final state hash, and the replays-identical /
  matches-live correctness flags (see ``docs/replay.md``).

* **Disorder tolerance** — the dense-sharing stream delivered through the
  watermark-driven reorder buffer (``docs/disorder.md``), both in sorted
  order and in a bounded-disorder arrival order; recorded as the
  ``disorder`` section with the no-buffer baseline, buffered in-order, and
  buffered shuffled throughputs, the reorder overhead factor on an in-order
  stream (gated ≤ 1.5× in ``benchmarks/test_engine_throughput.py``), and
  the zero-late / shuffled-matches-sorted correctness flags.

* **Kernel numerics** — the aggregation-bound regime (long shared pattern,
  compaction off, hundreds of live anchor cohorts: the per-cohort column
  commits dominate) where the optional numpy kernel backend
  (:mod:`repro.executor.kernels`) must beat the pure-Python columns;
  recorded as the ``kernel_numerics`` section with both throughputs, the
  in-harness zero-divergence flag (the numpy run's results must equal the
  Python run's bit for bit — :func:`run_kernel_benchmark` refuses to record
  a throughput otherwise), and a ``numpy_available`` flag so no-numpy
  environments record the Python baseline and skip the speedup gate.

Run ``python -m repro bench --section <name>`` (repeatable) to run a subset
of the sections while iterating on one of them.

Run it with ``python -m repro bench`` (or ``make bench``), or through pytest
via ``benchmarks/test_engine_throughput.py`` which asserts the scaling,
sharing, compaction, pane, columnar-routing, sharding, and replay
properties on the same records.  The full record schema is documented in
``docs/benchmarks.md``.
"""

from __future__ import annotations

import json
import os
import platform
import random
import statistics
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from ..core.candidates import SharingCandidate
from ..core.plan import SharingPlan
from ..datasets.synthetic import ChainConfig, chain_stream, chain_workload
from ..events.event import Event
from ..events.stream import EventStream
from ..events.windows import SlidingWindow
from ..executor.aseq import ASeqExecutor
from ..executor.kernels import numpy_available
from ..executor.shared import SharonExecutor
from ..queries.pattern import Pattern
from ..queries.predicates import FilterPredicate, PredicateSet
from ..queries.query import Query
from ..queries.workload import Workload
from ..utils.rates import RateCatalog

__all__ = [
    "BenchRecord",
    "CohortCompactionRecord",
    "DisorderRecord",
    "KernelNumericsRecord",
    "PaneSharingRecord",
    "ColumnarRoutingRecord",
    "ReplayBenchRecord",
    "ShardedGroupsRecord",
    "SCALE_FACTORS",
    "SHARD_BENCH_SHARDS",
    "scaling_scenario",
    "dense_sharing_scenario",
    "long_window_scenario",
    "small_slide_scenario",
    "routing_scenario",
    "many_group_scenario",
    "kernel_scenario",
    "run_disorder_benchmark",
    "run_engine_benchmark",
    "run_compaction_benchmark",
    "run_kernel_benchmark",
    "run_pane_benchmark",
    "run_replay_benchmark",
    "run_routing_benchmark",
    "run_sharding_benchmark",
    "write_bench_json",
]

#: Best-of-N sample count of the columnar-routing section (overridable via
#: the ``COLUMNAR_BENCH_REPEATS`` environment variable / Makefile knob).
COLUMNAR_BENCH_REPEATS = int(os.environ.get("COLUMNAR_BENCH_REPEATS", "5"))

#: Stream-scale multipliers exercised by the scaling scenarios.
SCALE_FACTORS: tuple[int, ...] = (1, 4, 16)

#: Shard count of the ``sharded_groups`` benchmark section (the speedup gate
#: compares this fan-out against the in-process ``shards=1`` run).
SHARD_BENCH_SHARDS = 4

#: Default location of the machine-readable benchmark record.
DEFAULT_BENCH_PATH = "BENCH_engine.json"


@dataclass(frozen=True)
class BenchRecord:
    """One (scenario, executor) measurement of the engine benchmark.

    Each measurement is best-of-N: ``elapsed_seconds`` (and the derived
    ``events_per_sec``) is the minimum over ``samples`` runs, and
    ``elapsed_median_seconds`` exposes the sample spread so noisy records are
    visible in the performance trajectory instead of being silently hidden by
    the best run.
    """

    scenario: str
    executor: str
    events: int
    elapsed_seconds: float
    events_per_sec: float
    peak_mb: float
    elapsed_median_seconds: float = 0.0
    samples: int = 1

    def to_json(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class CohortCompactionRecord:
    """The cohort-compaction section of ``BENCH_engine.json``.

    Captures, on the long-window high-anchor scenario, how many anchor
    cohorts the shared states created and how many compaction merged away,
    plus the Sharon throughput with compaction on vs off — the machine-checked
    statement that compaction shrinks state *and* does not cost throughput.
    """

    scenario: str
    events: int
    cohorts_created: int
    cohorts_merged: int
    cohorts_remaining: int
    compaction_on_events_per_sec: float
    compaction_off_events_per_sec: float
    samples: int = 1

    def to_json(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class PaneSharingRecord:
    """The pane-sharing section of ``BENCH_engine.json``.

    Captures, on the small-slide scenario (deep window-instance overlap,
    where per-instance processing re-touches every event ``size / slide``
    times), the engine throughput with pane partitioning on vs off plus the
    pane-mode work counters — the machine-checked statement that processing
    each event once per pane beats processing it once per covering window.
    """

    scenario: str
    events: int
    window_size: int
    window_slide: int
    pane_width: int
    panes_per_window: int
    panes_created: int
    pane_merges: int
    events_per_pane: float
    panes_on_events_per_sec: float
    panes_off_events_per_sec: float
    samples: int = 1

    def to_json(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class ColumnarRoutingRecord:
    """The columnar-routing section of ``BENCH_engine.json``.

    Captures, on the routing-bound scenario (many event types × many groups ×
    highly selective predicates, so per-event routing overhead dominates the
    run), the engine throughput with columnar micro-batch ingestion on vs off
    plus the routing shape counters — the machine-checked statement that
    compiled column kernels beat the scalar per-event path exactly where
    routing is the bottleneck.
    """

    scenario: str
    events: int
    event_types: int
    pattern_event_types: int
    groups: int
    relevant_fraction: float
    columnar_batches: int
    columnar_on_events_per_sec: float
    columnar_off_events_per_sec: float
    samples: int = 1

    def to_json(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class ReplayBenchRecord:
    """The deterministic-replay section of ``BENCH_engine.json``.

    Captures, on the dense-sharing scenario, the cost of the durable event
    log and of replaying it: log size and write throughput, replay throughput
    through :class:`~repro.replay.runner.ReplayRunner` next to the live
    (in-memory stream) throughput, the final state hash, and two correctness
    flags — ``replays_identical`` (``replays`` fresh replays all reached the
    same state hash) and ``matches_live`` (replayed results equal the live
    run's).  The gate in ``benchmarks/test_engine_throughput.py`` requires
    both flags and a replay throughput within a constant factor of live.
    """

    scenario: str
    events: int
    log_bytes: int
    record_events_per_sec: float
    replay_events_per_sec: float
    live_events_per_sec: float
    state_hash: str
    replays: int
    replays_identical: bool
    matches_live: bool
    samples: int = 1

    def to_json(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class DisorderRecord:
    """The disorder-tolerance section of ``BENCH_engine.json``.

    Captures, on the dense-sharing scenario, what the watermark-driven
    reorder buffer (``docs/disorder.md``) costs and what it buys: engine
    throughput with no buffer vs with the buffer on an already-sorted
    arrival order (``reorder_overhead`` is their ratio — the pure cost of
    routing every event through the buffer), throughput on a
    bounded-disorder arrival order, and two correctness flags —
    ``shuffled_matches_sorted`` (the disordered run's results equal the
    sorted run's) and zero ``events_late``/``events_dropped`` (the shuffle
    honoured its ≤ ``max_lateness`` promise).  All three measurements feed
    plain event iterables so none of them benefits from the in-memory
    stream's column cache.  The gate in
    ``benchmarks/test_engine_throughput.py`` requires the flags and a
    reorder overhead ≤ 1.5× on the in-order stream.
    """

    scenario: str
    events: int
    max_lateness: int
    inorder_events_per_sec: float
    reordered_inorder_events_per_sec: float
    reordered_shuffled_events_per_sec: float
    reorder_overhead: float
    events_late: int
    events_dropped: int
    shuffled_matches_sorted: bool
    samples: int = 1

    def to_json(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class ShardedGroupsRecord:
    """The sharded-groups section of ``BENCH_engine.json``.

    Captures, on the many-group scenario (dozens of independent groups, so
    the stream splits into balanced per-group shards), the engine throughput
    with group-sharded process fan-out vs the in-process ``shards=1`` run,
    plus the shard plan's shape and the machine's CPU count.  The wall-clock
    win is parallelism: it requires real cores, so the gate in
    ``benchmarks/test_engine_throughput.py`` enforces the ≥1.5× speedup only
    where ``cpu_count >= shards`` can deliver it — the zero-divergence check
    (sharded ≡ unsharded results) is enforced unconditionally by
    :func:`run_sharding_benchmark` itself.
    """

    scenario: str
    events: int
    groups: int
    shards: int
    strategy: str
    cpu_count: int
    groups_per_shard: tuple[int, ...]
    shard_skew: float
    sharded_events_per_sec: float
    unsharded_events_per_sec: float
    samples: int = 1

    def to_json(self) -> dict:
        """The record as a JSON-serialisable dict (tuples become lists)."""
        payload = asdict(self)
        payload["groups_per_shard"] = list(self.groups_per_shard)
        return payload


@dataclass(frozen=True)
class KernelNumericsRecord:
    """The kernel-numerics section of ``BENCH_engine.json``.

    Captures, on the aggregation-bound scenario (long shared pattern, many
    live anchor cohorts, compaction off — the per-cohort column commits are
    the hot loop), the engine throughput under the numpy kernel backend vs
    the pure-Python reference columns.  ``results_match`` is the in-harness
    zero-divergence check: :func:`run_kernel_benchmark` compares the two
    runs' full result sets and refuses to record a throughput if they
    differ, so a recorded section always reflects bit-identical results.
    On machines without the optional numpy dependency only the Python side
    is measured (``numpy_available`` false, numpy throughput and speedup
    zero) and the gate in ``benchmarks/test_engine_throughput.py`` skips
    the ≥2× speedup assertion — mirroring how ``sharded_groups`` guards its
    CPU-bound speedup.
    """

    scenario: str
    events: int
    queries: int
    shared_pattern_length: int
    cohorts_created: int
    numpy_available: bool
    python_events_per_sec: float
    numpy_events_per_sec: float
    speedup: float
    results_match: bool
    samples: int = 1

    def to_json(self) -> dict:
        return asdict(self)


def scaling_scenario(
    scale: int,
    duration: int = 60,
    base_events_per_second: float = 8.0,
    num_queries: int = 12,
    pattern_length: int = 4,
    num_types: int = 8,
    num_entities: int = 20,
    seed: int = 41,
) -> tuple[Workload, EventStream]:
    """The stream-scaling scenario at ``scale`` × the base rate.

    The rate multiplier scales both the stream length and the number of
    events per window (the paper's dominant cost factor), so a quadratic
    per-window engine shows its asymptotics here even at CI-friendly sizes.
    """
    config = ChainConfig(num_event_types=num_types)
    workload = chain_workload(
        num_queries,
        pattern_length,
        config=config,
        window=SlidingWindow(size=40, slide=20),
        seed=seed,
        offset_pool_size=3,
    )
    stream = chain_stream(
        duration=duration,
        events_per_second=base_events_per_second * scale,
        config=config,
        num_entities=num_entities,
        seed=seed + 1,
        name=f"scale-{scale}x",
    )
    return workload, stream


def dense_sharing_scenario(
    num_queries: int = 24,
    pattern_length: int = 5,
    num_types: int = 10,
    num_entities: int = 60,
    events_per_second: float = 60.0,
    duration: int = 90,
    seed: int = 47,
) -> tuple[Workload, EventStream]:
    """The Fig. 13 dense regime: many queries sharing long chain patterns."""
    config = ChainConfig(num_event_types=num_types)
    workload = chain_workload(
        num_queries,
        pattern_length,
        config=config,
        window=SlidingWindow(size=40, slide=20),
        seed=seed,
        offset_pool_size=2,
    )
    stream = chain_stream(
        duration=duration,
        events_per_second=events_per_second,
        config=config,
        num_entities=num_entities,
        seed=seed + 1,
        name="fig13-dense",
    )
    return workload, stream


def long_window_scenario(
    num_queries: int = 8,
    window: SlidingWindow | None = None,
    duration: int = 240,
) -> tuple[Workload, EventStream, SharingPlan]:
    """Long window, one anchor cohort per timestamp: the compaction regime.

    Every query shares the two-type prefix ``(A, B)``, so each sharing
    runner's carry is permanently the unit state and *all* anchor cohorts are
    mergeable.  Without compaction a scope accumulates one cohort per
    timestamp for the whole (long) window; with compaction it holds one.
    """
    window = window if window is not None else SlidingWindow(size=120, slide=60)
    suffix_types = tuple(f"T{i}" for i in range(num_queries))
    queries = [
        Query(Pattern(("A", "B", suffix)), window, name=f"lw{i}")
        for i, suffix in enumerate(suffix_types)
    ]
    workload = Workload(queries, name="long-window")
    plan = SharingPlan(
        [SharingCandidate(Pattern(("A", "B")), tuple(q.name for q in queries), 1.0)]
    )
    events = []
    event_id = 0
    for timestamp in range(duration):
        for event_type in ("A", "B", suffix_types[timestamp % num_queries]):
            events.append(Event(event_type, timestamp, {}, event_id))
            event_id += 1
    return workload, EventStream(events, name="long-window"), plan


def kernel_scenario(
    num_queries: int = 4,
    shared_length: int = 8,
    completion_every: int = 120,
    window: SlidingWindow | None = None,
    duration: int = 960,
) -> tuple[Workload, EventStream, SharingPlan]:
    """Long shared pattern, many live cohorts: the aggregation-bound regime.

    Every query shares a ``shared_length``-type prefix ``(S0, S1, ...)`` and
    appends one private suffix type that never occurs, so all engine work is
    the shared segment's column commits.  Each timestamp opens one anchor
    cohort (an ``S0``) and extends every interior position, while the
    completion type (the last ``S``) arrives only every
    ``completion_every``-th timestamp — most batches are therefore pure
    column multiply-adds with no completion-delta fan-out (the fan-out is
    boxed per-runner Python work under every backend, so a
    completion-heavy stream would just dilute what this section measures).  With compaction
    off (how :func:`run_kernel_benchmark` runs it) a scope accumulates one
    cohort per timestamp across a long window, so the per-cohort commit loop
    dominates the runtime — exactly the loop the numpy backend vectorises.
    """
    window = window if window is not None else SlidingWindow(size=480, slide=240)
    shared_types = tuple(f"S{i}" for i in range(shared_length))
    queries = [
        Query(Pattern(shared_types + (f"T{i}",)), window, name=f"kn{i}")
        for i in range(num_queries)
    ]
    workload = Workload(queries, name="kernel-columns")
    plan = SharingPlan(
        [SharingCandidate(Pattern(shared_types), tuple(q.name for q in queries), 1.0)]
    )
    events = []
    event_id = 0
    for timestamp in range(duration):
        batch_types = list(shared_types[:-1])
        if timestamp % completion_every == completion_every - 1:
            batch_types.append(shared_types[-1])
        for event_type in batch_types:
            events.append(Event(event_type, timestamp, {}, event_id))
            event_id += 1
    return workload, EventStream(events, name="kernel-columns"), plan


def small_slide_scenario(
    num_queries: int = 6,
    pattern_length: int = 4,
    num_types: int = 8,
    num_entities: int = 30,
    events_per_second: float = 40.0,
    duration: int = 120,
    window: SlidingWindow | None = None,
    seed: int = 53,
) -> tuple[Workload, EventStream]:
    """Deep window-instance overlap: the pane-sharing regime.

    A window of size 40 sliding by 2 covers every timestamp with 20
    instances, so the per-instance engine processes each event 20 times;
    pane partitioning (pane width ``gcd(40, 2) = 2``) processes it once and
    folds each closed pane into the covering instances.
    """
    config = ChainConfig(num_event_types=num_types)
    window = window if window is not None else SlidingWindow(size=40, slide=2)
    workload = chain_workload(
        num_queries,
        pattern_length,
        config=config,
        window=window,
        seed=seed,
        offset_pool_size=2,
    )
    stream = chain_stream(
        duration=duration,
        events_per_second=events_per_second,
        config=config,
        num_entities=num_entities,
        seed=seed + 1,
        name="small-slide",
    )
    return workload, stream


def routing_scenario(
    num_event_types: int = 64,
    num_pattern_types: int = 4,
    num_queries: int = 6,
    pattern_length: int = 3,
    num_entities: int = 8,
    events_per_second: float = 200.0,
    duration: int = 90,
    value_range: int = 100,
    filter_threshold: int = 97,
    window: SlidingWindow | None = None,
    seed: int = 61,
) -> tuple[Workload, EventStream]:
    """Routing-bound regime: per-event dispatch dominates, aggregation is tiny.

    Only ``num_pattern_types`` of the ``num_event_types`` stream types appear
    in any pattern, and the shared filter predicate passes just
    ``(value_range - 1 - filter_threshold) / value_range`` of the remaining
    events (~2% by default), so virtually every event's cost *is* the routing
    decision: type dispatch, predicate evaluation, group-key construction,
    and metric counting.  This is the regime the columnar micro-batch path
    exists for — the scalar loop pays per-event Python calls for each of
    those steps, the columnar loop replaces them with a precomputed
    type-relevance selection, one compiled filter kernel pass, and
    pre-interned group keys.
    """
    rng = random.Random(seed)
    pattern_types = [f"T{i}" for i in range(num_pattern_types)]
    all_types = [f"T{i}" for i in range(num_event_types)]
    window = window if window is not None else SlidingWindow(size=40, slide=20)
    predicates = PredicateSet(
        equivalences=PredicateSet.same("entity").equivalences,
        filters=[FilterPredicate("value", ">", filter_threshold)],
    )
    queries = [
        Query(
            Pattern(tuple(rng.sample(pattern_types, pattern_length))),
            window,
            predicates=predicates,
            name=f"rt{index}",
        )
        for index in range(num_queries)
    ]
    workload = Workload(queries, name="columnar-routing")
    events = []
    event_id = 0
    for timestamp in range(duration):
        for _ in range(int(events_per_second)):
            events.append(
                Event(
                    rng.choice(all_types),
                    timestamp,
                    {
                        "entity": rng.randrange(num_entities),
                        "value": rng.randrange(value_range),
                    },
                    event_id,
                )
            )
            event_id += 1
    return workload, EventStream(events, name="columnar-routing")


def many_group_scenario(
    num_queries: int = 12,
    pattern_length: int = 4,
    num_types: int = 10,
    num_entities: int = 64,
    events_per_second: float = 320.0,
    duration: int = 120,
    window: SlidingWindow | None = None,
    seed: int = 71,
) -> tuple[Workload, EventStream]:
    """Many independent groups: the group-sharding regime.

    Dozens of entities (one group each, via the chain workload's equivalence
    predicate) generate balanced per-group load, and the per-group
    aggregation work dominates routing — exactly the shape where splitting
    groups across worker processes approaches a linear wall-clock win.  The
    scenario is deliberately group-heavy and routing-light: sharding cannot
    reduce total work (each shard re-runs the same engine over its slice),
    it can only spread it across cores.
    """
    config = ChainConfig(num_event_types=num_types)
    window = window if window is not None else SlidingWindow(size=40, slide=20)
    workload = chain_workload(
        num_queries,
        pattern_length,
        config=config,
        window=window,
        seed=seed,
        offset_pool_size=3,
    )
    stream = chain_stream(
        duration=duration,
        events_per_second=events_per_second,
        config=config,
        num_entities=num_entities,
        seed=seed + 1,
        name="many-group",
    )
    return workload, stream


def _timed_run(executor, stream: EventStream, repeats: int):
    """Best-of-``repeats`` wall-clock measurement of one executor."""
    elapsed_samples: list[float] = []
    report = None
    for _ in range(repeats):
        started = time.perf_counter()
        report = executor.run(stream)
        elapsed_samples.append(time.perf_counter() - started)
    return report, min(elapsed_samples), statistics.median(elapsed_samples)


def _measure(
    scenario: str,
    executor_name: str,
    workload: Workload,
    stream: EventStream,
    memory_sample_interval: int,
    repeats: int = 3,
) -> BenchRecord:
    if executor_name == "Sharon":
        rates = RateCatalog.from_stream(stream, per="window", window_size=workload[0].window.size)
        executor = SharonExecutor(
            workload, rates=rates, memory_sample_interval=memory_sample_interval
        )
    elif executor_name == "A-Seq":
        executor = ASeqExecutor(workload, memory_sample_interval=memory_sample_interval)
    else:  # pragma: no cover - guarded by callers
        raise ValueError(f"unknown benchmark executor {executor_name!r}")
    report, best, median = _timed_run(executor, stream, repeats)
    total = len(stream)
    return BenchRecord(
        scenario=scenario,
        executor=executor_name,
        events=total,
        elapsed_seconds=round(best, 6),
        events_per_sec=round(total / best if best > 0 else float(total), 1),
        peak_mb=round(report.metrics.peak_memory_bytes / 1_000_000, 3),
        elapsed_median_seconds=round(median, 6),
        samples=repeats,
    )


def run_engine_benchmark(
    scales: tuple[int, ...] = SCALE_FACTORS,
    memory_sample_interval: int = 2,
    executors: tuple[str, ...] = ("Sharon", "A-Seq"),
    repeats: int = 3,
) -> list[BenchRecord]:
    """Run all scenarios × executors and return the measurement records."""
    records: list[BenchRecord] = []
    for scale in scales:
        workload, stream = scaling_scenario(scale)
        for executor_name in executors:
            records.append(
                _measure(
                    f"scale-{scale}x",
                    executor_name,
                    workload,
                    stream,
                    memory_sample_interval,
                    repeats,
                )
            )
    workload, stream = dense_sharing_scenario()
    for executor_name in executors:
        records.append(
            _measure("fig13-dense", executor_name, workload, stream, memory_sample_interval, repeats)
        )
    return records


def run_compaction_benchmark(repeats: int = 3) -> CohortCompactionRecord:
    """Measure cohort compaction on the long-window scenario.

    Runs the same workload/plan with compaction on and off and reports the
    cohort reduction of the on-run next to both throughputs.
    """
    workload, stream, plan = long_window_scenario()
    total = len(stream)

    on_report, on_best, _ = _timed_run(
        SharonExecutor(workload, plan=plan, compaction=True), stream, repeats
    )
    off_report, off_best, _ = _timed_run(
        SharonExecutor(workload, plan=plan, compaction=False), stream, repeats
    )
    if not on_report.results.matches(off_report.results):
        raise RuntimeError(
            "cohort compaction changed the long-window benchmark results; "
            "refusing to record its throughput"
        )
    return CohortCompactionRecord(
        scenario="long-window",
        events=total,
        cohorts_created=on_report.metrics.cohorts_created,
        cohorts_merged=on_report.metrics.cohorts_merged,
        cohorts_remaining=on_report.metrics.cohorts_created
        - on_report.metrics.cohorts_merged,
        compaction_on_events_per_sec=round(total / on_best if on_best > 0 else float(total), 1),
        compaction_off_events_per_sec=round(
            total / off_best if off_best > 0 else float(total), 1
        ),
        samples=repeats,
    )


def run_pane_benchmark(repeats: int = 3) -> PaneSharingRecord:
    """Measure pane partitioning on the small-slide scenario.

    Runs the same workload/plan with panes on and off, refuses to record a
    throughput if the two runs disagree on any result, and reports the pane
    work counters of the on-run next to both throughputs.
    """
    workload, stream = small_slide_scenario()
    window = workload[0].window
    total = len(stream)
    rates = RateCatalog.from_stream(stream, per="window", window_size=window.size)
    plan = SharonExecutor(workload, rates=rates).plan

    on_executor = SharonExecutor(workload, plan=plan, panes=True)
    if not on_executor._engine.uses_panes:  # pragma: no cover - scenario invariant
        raise RuntimeError("the small-slide scenario must run in pane mode")
    on_report, on_best, _ = _timed_run(on_executor, stream, repeats)
    off_report, off_best, _ = _timed_run(
        SharonExecutor(workload, plan=plan, panes=False), stream, repeats
    )
    if not on_report.results.matches(off_report.results):
        raise RuntimeError(
            "pane partitioning changed the small-slide benchmark results; "
            "refusing to record its throughput"
        )
    return PaneSharingRecord(
        scenario="small-slide",
        events=total,
        window_size=window.size,
        window_slide=window.slide,
        pane_width=window.pane_width,
        panes_per_window=window.panes_per_window,
        panes_created=on_report.metrics.panes_created,
        pane_merges=on_report.metrics.pane_merges,
        events_per_pane=round(on_report.metrics.events_per_pane, 2),
        panes_on_events_per_sec=round(total / on_best if on_best > 0 else float(total), 1),
        panes_off_events_per_sec=round(total / off_best if off_best > 0 else float(total), 1),
        samples=repeats,
    )


def run_routing_benchmark(repeats: int = COLUMNAR_BENCH_REPEATS) -> ColumnarRoutingRecord:
    """Measure columnar micro-batch ingestion on the routing-bound scenario.

    Runs the same workload with the columnar path on and off (scalar
    per-event reference), refuses to record a throughput if the two modes
    disagree on any result, and reports the routing shape counters of the
    on-run next to both throughputs.  Best-of-``repeats``: the columnar side
    is measured warm (the stream's column cache is built once, on the first
    run), matching the once-per-stream ingestion cost of a columnar source.
    """
    workload, stream = routing_scenario()
    total = len(stream)

    on_report, on_best, _ = _timed_run(
        SharonExecutor(workload, plan=SharingPlan(), columnar=True), stream, repeats
    )
    off_report, off_best, _ = _timed_run(
        SharonExecutor(workload, plan=SharingPlan(), columnar=False), stream, repeats
    )
    if not on_report.results.matches(off_report.results):
        raise RuntimeError(
            "columnar routing changed the routing-bound benchmark results; "
            "refusing to record its throughput"
        )
    metrics = on_report.metrics
    pattern_types = {
        event_type for query in workload for event_type in query.pattern.event_types
    }
    return ColumnarRoutingRecord(
        scenario="columnar-routing",
        events=total,
        event_types=len(stream.event_types()),
        pattern_event_types=len(pattern_types),
        groups=len({event.attribute("entity") for event in stream}),
        relevant_fraction=round(metrics.relevant_events / max(metrics.total_events, 1), 5),
        columnar_batches=metrics.columnar_batches,
        columnar_on_events_per_sec=round(total / on_best if on_best > 0 else float(total), 1),
        columnar_off_events_per_sec=round(
            total / off_best if off_best > 0 else float(total), 1
        ),
        samples=repeats,
    )


def run_sharding_benchmark(
    repeats: int = 3, shards: int = SHARD_BENCH_SHARDS
) -> ShardedGroupsRecord:
    """Measure group-sharded process fan-out on the many-group scenario.

    Runs the same workload/plan through the engine with ``shards`` worker
    processes and in-process (``shards=1``), refuses to record a throughput
    if the two runs disagree on any result (the in-harness zero-divergence
    check), and reports the shard plan's shape — plus the CPU count the
    measurement was taken on, because the sharded side can only win where
    real cores exist — next to both throughputs.
    """
    workload, stream = many_group_scenario()
    window = workload[0].window
    total = len(stream)
    rates = RateCatalog.from_stream(stream, per="window", window_size=window.size)
    plan = SharonExecutor(workload, rates=rates).plan

    sharded_report, sharded_best, _ = _timed_run(
        SharonExecutor(workload, plan=plan, shards=shards), stream, repeats
    )
    unsharded_report, unsharded_best, _ = _timed_run(
        SharonExecutor(workload, plan=plan), stream, repeats
    )
    if not sharded_report.results.matches(unsharded_report.results):
        raise RuntimeError(
            "group sharding changed the many-group benchmark results; "
            "refusing to record its throughput"
        )
    metrics = sharded_report.metrics
    if metrics.shards != shards:  # pragma: no cover - scenario invariant
        raise RuntimeError(
            f"the many-group scenario must fan out to {shards} shards, "
            f"got {metrics.shards}"
        )
    return ShardedGroupsRecord(
        scenario="many-group",
        events=total,
        groups=sum(metrics.groups_per_shard),
        shards=metrics.shards,
        strategy="greedy",
        cpu_count=os.cpu_count() or 1,
        groups_per_shard=metrics.groups_per_shard,
        shard_skew=metrics.shard_skew,
        sharded_events_per_sec=round(
            total / sharded_best if sharded_best > 0 else float(total), 1
        ),
        unsharded_events_per_sec=round(
            total / unsharded_best if unsharded_best > 0 else float(total), 1
        ),
        samples=repeats,
    )


def run_replay_benchmark(repeats: int = 3, replays: int = 3) -> ReplayBenchRecord:
    """Measure the durable event log and deterministic replay on the dense scenario.

    Writes the dense-sharing stream to a JSONL event log (timed: the durable
    recording cost), replays it ``repeats`` times through
    :class:`~repro.replay.runner.ReplayRunner` (best-of, warm log), runs the
    live in-memory engine for reference, then replays ``replays`` more times
    from scratch and records whether every replay reached the same final
    state hash and whether the replayed results equal the live run's.
    """
    import tempfile

    from ..events.log import EventLogReader, write_event_log
    from ..replay import ReplayRunner

    workload, stream = dense_sharing_scenario()
    window = workload[0].window
    total = len(stream)
    rates = RateCatalog.from_stream(stream, per="window", window_size=window.size)
    plan = SharonExecutor(workload, rates=rates).plan

    with tempfile.TemporaryDirectory() as tmpdir:
        log_path = Path(tmpdir) / "bench-events.jsonl"
        record_samples = []
        for _ in range(repeats):
            started = time.perf_counter()
            write_event_log(stream, log_path, stream_name=stream.name)
            record_samples.append(time.perf_counter() - started)
        record_best = min(record_samples)
        log_bytes = log_path.stat().st_size

        reader = EventLogReader(log_path)
        replay_samples = []
        replay_report = None
        for _ in range(repeats):
            runner = ReplayRunner(workload, plan=plan, name="Replay")
            started = time.perf_counter()
            replay_report = runner.run(reader)
            replay_samples.append(time.perf_counter() - started)
        replay_best = min(replay_samples)

        live_report, live_best, _ = _timed_run(
            SharonExecutor(workload, plan=plan), stream, repeats
        )

        hashes = {replay_report.state_hash}
        for _ in range(replays - 1):
            hashes.add(ReplayRunner(workload, plan=plan).run(reader).state_hash)

    return ReplayBenchRecord(
        scenario="dense-sharing-replay",
        events=total,
        log_bytes=log_bytes,
        record_events_per_sec=round(total / record_best if record_best > 0 else float(total), 1),
        replay_events_per_sec=round(total / replay_best if replay_best > 0 else float(total), 1),
        live_events_per_sec=round(total / live_best if live_best > 0 else float(total), 1),
        state_hash=replay_report.state_hash,
        replays=replays,
        replays_identical=len(hashes) == 1,
        matches_live=live_report.results.matches(replay_report.results),
        samples=repeats,
    )


def run_disorder_benchmark(repeats: int = 3, max_lateness: int = 8) -> DisorderRecord:
    """Measure bounded-disorder ingestion on the dense-sharing scenario.

    Runs the same workload/plan three ways — no reorder buffer on the sorted
    arrival order, buffer on the sorted order (the overhead measurement),
    and buffer on a ``bounded_shuffle`` arrival order — refuses to record a
    throughput if buffering or reordering changes any result, and reports
    all three throughputs plus the lateness counters of the shuffled run.
    Every run feeds a plain event iterable (fresh iterator per sample), so
    the comparison never mixes the in-memory stream's cached columnar path
    with per-run column construction.
    """
    from ..events.disorder import bounded_shuffle

    workload, stream = dense_sharing_scenario()
    window = workload[0].window
    events = list(stream)
    total = len(events)
    rates = RateCatalog.from_stream(stream, per="window", window_size=window.size)
    plan = SharonExecutor(workload, rates=rates).plan
    shuffled = bounded_shuffle(events, max_lateness, seed=83)

    def timed(order, **engine_kwargs):
        samples = []
        report = None
        for _ in range(repeats):
            executor = SharonExecutor(workload, plan=plan, **engine_kwargs)
            started = time.perf_counter()
            report = executor.run(iter(order))
            samples.append(time.perf_counter() - started)
        return report, min(samples)

    baseline_report, baseline_best = timed(events)
    buffered_report, buffered_best = timed(events, max_lateness=max_lateness)
    shuffled_report, shuffled_best = timed(shuffled, max_lateness=max_lateness)

    if not buffered_report.results.matches(baseline_report.results):
        raise RuntimeError(
            "the reorder buffer changed the dense-sharing benchmark results "
            "on an in-order stream; refusing to record its throughput"
        )
    matches = shuffled_report.results.matches(baseline_report.results)

    def events_per_sec(best: float) -> float:
        return round(total / best if best > 0 else float(total), 1)

    return DisorderRecord(
        scenario="dense-sharing-disorder",
        events=total,
        max_lateness=max_lateness,
        inorder_events_per_sec=events_per_sec(baseline_best),
        reordered_inorder_events_per_sec=events_per_sec(buffered_best),
        reordered_shuffled_events_per_sec=events_per_sec(shuffled_best),
        # Wall-clock slowdown factor of the buffer on an in-order stream
        # (> 1 means buffering cost; the gate allows up to 1.5×).
        reorder_overhead=round(
            buffered_best / baseline_best if baseline_best > 0 else 1.0, 3
        ),
        events_late=shuffled_report.metrics.events_late,
        events_dropped=shuffled_report.metrics.events_dropped,
        shuffled_matches_sorted=matches,
        samples=repeats,
    )


def run_kernel_benchmark(repeats: int = 3) -> KernelNumericsRecord:
    """Measure the numpy kernel backend on the aggregation-bound scenario.

    Runs the same workload/plan (compaction off, so the cohort columns stay
    long) under ``backend="python"`` and ``backend="numpy"`` and refuses to
    record a throughput if the two runs disagree on any result — the
    in-harness zero-divergence check.  Without numpy installed only the
    Python side is measured and the record carries ``numpy_available=False``
    (the speedup gate skips there; the parity claim is vacuous with one
    backend, so ``results_match`` records false).
    """
    workload, stream, plan = kernel_scenario()
    total = len(stream)

    python_report, python_best, _ = _timed_run(
        SharonExecutor(workload, plan=plan, compaction=False, backend="python"),
        stream,
        repeats,
    )
    python_rate = round(total / python_best if python_best > 0 else float(total), 1)
    numpy_rate = 0.0
    speedup = 0.0
    matches = False
    if numpy_available():
        numpy_report, numpy_best, _ = _timed_run(
            SharonExecutor(workload, plan=plan, compaction=False, backend="numpy"),
            stream,
            repeats,
        )
        if not numpy_report.results.matches(python_report.results):
            raise RuntimeError(
                "the numpy kernel backend changed the kernel-columns benchmark "
                "results; refusing to record its throughput"
            )
        matches = True
        numpy_rate = round(total / numpy_best if numpy_best > 0 else float(total), 1)
        speedup = round(python_best / numpy_best if numpy_best > 0 else 0.0, 3)
    return KernelNumericsRecord(
        scenario="kernel-columns",
        events=total,
        queries=len(workload),
        shared_pattern_length=len(plan.candidates[0].pattern) if plan.candidates else 0,
        cohorts_created=python_report.metrics.cohorts_created,
        numpy_available=numpy_available(),
        python_events_per_sec=python_rate,
        numpy_events_per_sec=numpy_rate,
        speedup=speedup,
        results_match=matches,
        samples=repeats,
    )


def write_bench_json(
    records: list[BenchRecord],
    path: "str | Path" = DEFAULT_BENCH_PATH,
    compaction: "CohortCompactionRecord | None" = None,
    pane_sharing: "PaneSharingRecord | None" = None,
    columnar_routing: "ColumnarRoutingRecord | None" = None,
    sharded_groups: "ShardedGroupsRecord | None" = None,
    replay: "ReplayBenchRecord | None" = None,
    disorder: "DisorderRecord | None" = None,
    kernel_numerics: "KernelNumericsRecord | None" = None,
) -> Path:
    """Write the records as the machine-readable ``BENCH_engine.json``."""
    payload = {
        "benchmark": "engine-throughput",
        "python": platform.python_version(),
        "results": [record.to_json() for record in records],
    }
    if compaction is not None:
        payload["cohort_compaction"] = compaction.to_json()
    if pane_sharing is not None:
        payload["pane_sharing"] = pane_sharing.to_json()
    if columnar_routing is not None:
        payload["columnar_routing"] = columnar_routing.to_json()
    if sharded_groups is not None:
        payload["sharded_groups"] = sharded_groups.to_json()
    if replay is not None:
        payload["replay"] = replay.to_json()
    if disorder is not None:
        payload["disorder"] = disorder.to_json()
    if kernel_numerics is not None:
        payload["kernel_numerics"] = kernel_numerics.to_json()
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return target
