"""Cross-cutting utilities: rate catalog, validation guards, memory measurement."""

from .memory import PeakMemoryTracker, deep_sizeof
from .rates import RateCatalog
from .validation import require_in, require_non_empty, require_non_negative, require_positive

__all__ = [
    "PeakMemoryTracker",
    "deep_sizeof",
    "RateCatalog",
    "require_in",
    "require_non_empty",
    "require_non_negative",
    "require_positive",
]
