"""Shared argument-validation helpers.

These small guards keep the public API's error messages uniform without
sprinkling repetitive ``if``/``raise`` blocks over every constructor.
"""

from __future__ import annotations

from typing import Iterable, Sized

__all__ = ["require_positive", "require_non_negative", "require_non_empty", "require_in"]


def require_positive(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` is zero or positive."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def require_non_empty(value: Sized, name: str) -> Sized:
    """Raise :class:`ValueError` when a container argument is empty."""
    if len(value) == 0:
        raise ValueError(f"{name} must not be empty")
    return value


def require_in(value, allowed: Iterable, name: str):
    """Raise :class:`ValueError` when ``value`` is not one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")
    return value
