"""Event-rate catalog used by the sharing benefit model.

The cost formulas of Section 3 are parameterised by the arrival rate of each
event type, ``Rate(E)``, and by derived quantities such as the total rate of
the types of a pattern (Equation 1).  A :class:`RateCatalog` holds those
per-type rates; it can be constructed

* explicitly from a ``{type: rate}`` mapping (unit tests, paper examples),
* uniformly (every type has the same rate — the paper's default workloads
  use streams with roughly balanced types), or
* empirically from a stream sample, mirroring the runtime-statistics
  collection the paper delegates to [18] for dynamic workloads (Section 7.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..events.event import EventType
from ..events.stream import EventStream
from ..queries.pattern import Pattern

__all__ = ["RateCatalog"]


@dataclass
class RateCatalog:
    """Per-event-type rates (events per time unit, or per window — any
    consistent unit works because the benefit model only compares costs).

    Parameters
    ----------
    rates:
        Mapping from event type to its rate.
    default_rate:
        Rate assumed for types missing from ``rates``.  The paper's model
        needs every referenced type to have a positive rate; a zero default
        combined with a strict lookup surfaces typos early.
    """

    rates: dict[EventType, float] = field(default_factory=dict)
    default_rate: float | None = None

    def __post_init__(self) -> None:
        for event_type, rate in self.rates.items():
            if rate < 0:
                raise ValueError(f"rate of {event_type!r} must be non-negative, got {rate}")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def uniform(cls, event_types: Iterable[EventType], rate: float = 1.0) -> "RateCatalog":
        """A catalog assigning the same ``rate`` to every listed type."""
        return cls({event_type: float(rate) for event_type in event_types})

    @classmethod
    def from_mapping(cls, rates: Mapping[EventType, float]) -> "RateCatalog":
        return cls(dict(rates))

    @classmethod
    def from_stream(
        cls,
        stream: EventStream,
        per: str = "window",
        window_size: int | None = None,
    ) -> "RateCatalog":
        """Estimate rates from a stream sample.

        Parameters
        ----------
        stream:
            The sample to measure.
        per:
            ``"time-unit"`` for events per stream time unit or ``"window"``
            for expected events per window (requires ``window_size``).
        window_size:
            Window length when ``per="window"``.
        """
        stats = stream.statistics()
        if per == "time-unit":
            factor = 1.0
        elif per == "window":
            if window_size is None:
                raise ValueError("per='window' requires window_size")
            factor = float(window_size)
        else:
            raise ValueError(f"unknown rate unit {per!r}")
        duration = max(stats.duration, 1)
        rates = {
            event_type: count / duration * factor
            for event_type, count in stats.counts_per_type.items()
        }
        return cls(rates)

    # -- lookups ---------------------------------------------------------------
    def rate(self, event_type: EventType) -> float:
        """``Rate(E)`` for one event type."""
        if event_type in self.rates:
            return self.rates[event_type]
        if self.default_rate is not None:
            return self.default_rate
        raise KeyError(
            f"no rate registered for event type {event_type!r} "
            f"(known: {sorted(self.rates)}); set default_rate to allow fallbacks"
        )

    def __contains__(self, event_type: EventType) -> bool:
        return event_type in self.rates or self.default_rate is not None

    def pattern_rate(self, pattern: Pattern) -> float:
        """``Rate(P) = sum of Rate(Ej)`` over the pattern's types (Equation 1).

        An empty pattern (missing prefix or suffix) has rate 0.
        """
        return float(sum(self.rate(event_type) for event_type in pattern.event_types))

    def start_rate(self, pattern: Pattern) -> float:
        """``Rate(E1)``: rate of the START type of ``pattern`` (0 if empty)."""
        if len(pattern) == 0:
            return 0.0
        return self.rate(pattern.start_type)

    # -- mutation ---------------------------------------------------------------
    def set_rate(self, event_type: EventType, rate: float) -> None:
        if rate < 0:
            raise ValueError("rates must be non-negative")
        self.rates[event_type] = float(rate)

    def scaled(self, factor: float) -> "RateCatalog":
        """A new catalog with every rate multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return RateCatalog(
            {event_type: rate * factor for event_type, rate in self.rates.items()},
            default_rate=None if self.default_rate is None else self.default_rate * factor,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RateCatalog({len(self.rates)} types, default={self.default_rate})"
