"""Approximate deep-size measurement for peak-memory reporting.

The paper reports "peak memory ... for storing aggregates, events, and event
sequences" (executors) and "for storing the Sharon graph and the sharing
plans" (optimizers).  We approximate the footprint of a Python object graph
with a recursive ``sys.getsizeof`` walk.  Absolute byte counts differ from the
authors' Java measurements, but relative comparisons between executors (the
quantity the figures plot) remain meaningful because all executors are
measured the same way.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable

__all__ = ["deep_sizeof", "PeakMemoryTracker"]


def deep_sizeof(obj: Any, _seen: set[int] | None = None) -> int:
    """Approximate total size in bytes of ``obj`` and everything it references.

    Shared sub-objects are counted once, which is exactly what we want when
    comparing shared against non-shared executors: state reused by several
    queries contributes its footprint a single time.
    """
    seen = _seen if _seen is not None else set()
    object_id = id(obj)
    if object_id in seen:
        return 0
    seen.add(object_id)

    size = sys.getsizeof(obj)

    if isinstance(obj, dict):
        size += sum(deep_sizeof(k, seen) + deep_sizeof(v, seen) for k, v in obj.items())
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(deep_sizeof(item, seen) for item in obj)
    elif hasattr(obj, "__dict__"):
        size += deep_sizeof(vars(obj), seen)
    elif hasattr(obj, "__slots__"):
        size += sum(
            deep_sizeof(getattr(obj, slot), seen)
            for slot in _iter_slots(obj)
            if hasattr(obj, slot)
        )
    return size


def _iter_slots(obj: Any) -> Iterable[str]:
    for klass in type(obj).__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        yield from slots


class PeakMemoryTracker:
    """Keeps the maximum of a series of memory samples.

    Executors call :meth:`sample` at window boundaries (where their state is
    largest) and report :attr:`peak_bytes` at the end of a run.
    """

    def __init__(self) -> None:
        self.peak_bytes = 0
        self.samples = 0

    def sample(self, *objects: Any) -> int:
        """Measure the given objects and fold the total into the peak."""
        seen: set[int] = set()
        total = sum(deep_sizeof(obj, seen) for obj in objects)
        self.samples += 1
        if total > self.peak_bytes:
            self.peak_bytes = total
        return total

    def record(self, nbytes: int) -> None:
        """Fold an externally measured byte count into the peak."""
        if nbytes > self.peak_bytes:
            self.peak_bytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PeakMemoryTracker(peak={self.peak_bytes}B over {self.samples} samples)"
