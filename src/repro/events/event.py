"""Core event model for the Sharon reproduction.

Events are the atomic inputs of every executor in this library.  Following the
paper's data model (Section 2.1), time is a linearly ordered set of
non-negative integers (seconds in the motivating examples), every event
carries a time stamp assigned by its source, belongs to exactly one *event
type* (e.g. ``MainSt`` position reports, ``Laptop`` purchases), and exposes a
flat attribute dictionary described by an :class:`~repro.events.schema.EventSchema`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Event", "EventType"]


#: Event types are plain strings ("MainSt", "Laptop", ...).  An alias is kept
#: so signatures read like the paper ("given event types E1..El").
EventType = str


@dataclass(frozen=True, slots=True)
class Event:
    """A single immutable stream event.

    Parameters
    ----------
    event_type:
        The type ``E`` of the event (``e.type = E`` in the paper).
    timestamp:
        Non-negative integer time stamp ``e.time`` assigned by the producer.
        The stream substrate guarantees that executors observe events in
        non-decreasing timestamp order; sequence semantics use *strictly*
        increasing timestamps between matched events.
    attributes:
        Flat mapping of attribute name to value (e.g. ``{"vehicle": 17}``).
    event_id:
        Optional producer-assigned identifier, handy for debugging and for
        deterministic tie-breaking in tests.  It never affects matching.
    """

    event_type: EventType
    timestamp: int
    attributes: Mapping[str, Any] = field(default_factory=dict)
    event_id: int = -1

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"event timestamp must be non-negative, got {self.timestamp}")
        if not self.event_type:
            raise ValueError("event type must be a non-empty string")

    @property
    def type(self) -> EventType:
        """Alias matching the paper's ``e.type`` notation."""
        return self.event_type

    @property
    def time(self) -> int:
        """Alias matching the paper's ``e.time`` notation."""
        return self.timestamp

    def attribute(self, name: str, default: Any = None) -> Any:
        """Return the value of attribute ``name`` or ``default`` if absent."""
        return self.attributes.get(name, default)

    def __getitem__(self, name: str) -> Any:
        try:
            return self.attributes[name]
        except KeyError as exc:
            raise KeyError(
                f"event of type {self.event_type!r} has no attribute {name!r}; "
                f"known attributes: {sorted(self.attributes)}"
            ) from exc

    def __contains__(self, name: str) -> bool:
        return name in self.attributes

    def with_attributes(self, **updates: Any) -> "Event":
        """Return a copy of this event with some attributes replaced/added."""
        merged = dict(self.attributes)
        merged.update(updates)
        return Event(self.event_type, self.timestamp, merged, self.event_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.attributes.items()))
        return f"Event({self.event_type}@{self.timestamp}{', ' + attrs if attrs else ''})"
