"""Columnar micro-batch representation of a timestamp batch.

The per-event hot path of the streaming engine spends most of its time in
boxed-``Event`` plumbing: an ``isinstance``-free but still per-event type
lookup, a per-event predicate walk (``PredicateSet.accepts``), a per-event
group-key tuple construction, and per-event metric counting.  None of that
work depends on anything but a handful of *columns* — the event type, the
attributes the workload's predicates read, and the partition attributes.

This module provides the struct-of-arrays view the engine's columnar mode
(:class:`~repro.executor.engine.StreamingEngine` with ``columnar=True``)
consumes instead:

* :class:`ColumnLayout` — *which* columns to materialise, derived once per
  compiled workload: the relevant event types (interned to small integer
  ids), the attributes read by filter predicates and aggregate specs, and
  the partition attributes (GROUP BY + equivalence predicates) that become
  interned group-key tuples.
* :class:`ColumnarBatch` — one timestamp batch as parallel arrays:
  ``type_ids`` (``-1`` for types outside the workload), one value list per
  layout attribute, and the interned ``group_keys``.  The boxed ``events``
  list is kept alongside so index selections can be materialised back into
  row batches for the aggregation states.
* :func:`columnar_batches` — the lookahead-free batch iterator, mirroring
  :func:`~repro.events.stream.timestamp_batches` for arbitrary event
  iterables.  :meth:`EventStream.columnar_batches
  <repro.events.stream.EventStream.columnar_batches>` caches the built
  batches per layout, so replaying an in-memory stream pays the column
  extraction once — the ingestion cost model of a columnar source.

Group keys are *interned*: equal keys across a stream are one tuple object,
which removes per-event tuple allocation from the routing loop and keeps the
per-group dictionaries compact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from .event import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (EventStream)
    from .stream import EventStream

__all__ = ["ColumnLayout", "ColumnarBatch", "columnar_batches"]

#: Distinct group keys retained by the streaming interner before it is
#: dropped and restarted.  Interning is a dedup optimisation, never a
#: correctness requirement, so resetting it merely loses tuple sharing
#: across the boundary — and keeps unbounded-stream runs bounded by their
#: open scopes (the engine's memory contract), not by group cardinality.
_INTERNER_LIMIT = 4096


class ColumnLayout:
    """Which columns a :class:`ColumnarBatch` materialises.

    Parameters
    ----------
    types:
        The event types the workload can react to; interned to ids
        ``0..len(types)-1`` in the given order.  Every other type maps to
        ``-1`` (irrelevant by type).
    attributes:
        Attributes to extract into per-batch value columns (the union of
        filter-predicate and aggregate-spec reads).
    partition:
        Attributes forming the group key (GROUP BY then equivalence
        attributes, in :attr:`Query.partition_attributes` order); when
        non-empty each batch carries an interned ``group_keys`` column.

    Layouts are value objects (hashable, compared structurally) so
    :class:`~repro.events.stream.EventStream` can cache built batches per
    layout across engine runs and plan migrations.
    """

    __slots__ = ("types", "attributes", "partition", "_type_ids", "_hash")

    def __init__(
        self,
        types: Iterable[str],
        attributes: Iterable[str] = (),
        partition: Iterable[str] = (),
    ) -> None:
        self.types: tuple[str, ...] = tuple(types)
        self.attributes: tuple[str, ...] = tuple(attributes)
        self.partition: tuple[str, ...] = tuple(partition)
        self._type_ids: dict[str, int] = {
            event_type: index for index, event_type in enumerate(self.types)
        }
        if len(self._type_ids) != len(self.types):
            raise ValueError("layout types must be unique")
        self._hash = hash((self.types, self.attributes, self.partition))

    def type_id(self, event_type: str) -> int:
        """Interned id of ``event_type``; ``-1`` when outside the layout."""
        return self._type_ids.get(event_type, -1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnLayout):
            return NotImplemented
        return (
            self.types == other.types
            and self.attributes == other.attributes
            and self.partition == other.partition
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnLayout(types={len(self.types)}, attributes={list(self.attributes)}, "
            f"partition={list(self.partition)})"
        )


class ColumnarBatch:
    """One same-timestamp batch in struct-of-arrays form.

    All columns are parallel to :attr:`events` but only *defined* at the
    type-relevant indices (:attr:`relevant`): routing never reads a value or
    group key of a row the workload cannot react to, so extraction skips
    those rows and leaves ``None`` cells behind.  At relevant indices,
    ``columns[attr][i] is None`` means event ``i`` does not carry ``attr``
    (matching ``Event.attribute(attr)``).
    """

    __slots__ = (
        "timestamp",
        "events",
        "size",
        "type_ids",
        "relevant",
        "columns",
        "group_keys",
    )

    def __init__(
        self,
        timestamp: int,
        events: list[Event],
        type_ids: list[int],
        columns: dict[str, list[Any]],
        group_keys: "list[tuple] | None",
    ) -> None:
        self.timestamp = timestamp
        self.events = events
        self.size = len(events)
        self.type_ids = type_ids
        #: Row indices whose type the layout knows (``type_ids[i] >= 0``) —
        #: the batch's type-relevance selection, precomputed at ingestion so
        #: routing never scans rows the workload cannot react to.
        self.relevant: list[int] = [
            i for i, type_id in enumerate(type_ids) if type_id >= 0
        ]
        self.columns = columns
        self.group_keys = group_keys

    @classmethod
    def from_events(
        cls,
        timestamp: int,
        events: list[Event],
        layout: ColumnLayout,
        key_interner: "dict[tuple, tuple] | None" = None,
    ) -> "ColumnarBatch":
        """Extract the layout's columns from one timestamp batch.

        ``key_interner`` deduplicates group-key tuples across batches; pass
        one shared dict per stream so routing dictionaries see one object per
        distinct key.  Attribute cells and group keys are extracted only at
        type-relevant rows — the rest of the batch is dead to routing by
        construction, so per-event work tracks the relevant fraction, not
        the stream rate.
        """
        type_of = layout._type_ids
        type_ids = [type_of.get(event.event_type, -1) for event in events]
        batch = cls(timestamp, events, type_ids, {}, None)
        relevant = batch.relevant
        columns = batch.columns
        for attr in layout.attributes:
            column: list[Any] = [None] * batch.size
            for i in relevant:
                column[i] = events[i].attributes.get(attr)
            columns[attr] = column
        partition = layout.partition
        if partition:
            interner = key_interner if key_interner is not None else {}
            group_keys: list["tuple | None"] = [None] * batch.size
            for i in relevant:
                attrs = events[i].attributes
                raw = tuple(attrs.get(name) for name in partition)
                group_keys[i] = interner.setdefault(raw, raw)
            batch.group_keys = group_keys
        return batch

    def attribute_values(self, attr: str, rows: "Sequence[int] | None" = None) -> list:
        """Raw value column of ``attr`` at ``rows`` (default: all relevant rows).

        Returns the already-extracted cells in row order — ``None`` where the
        event does not carry ``attr`` — without touching any event object.
        This is the raw-column surface the kernel backends reduce over
        (:func:`repro.executor.kernels.summarise_values` and its pure-Python
        twin :meth:`repro.queries.aggregates.AggregateSpec.summarise_values`):
        an aggregation summary becomes one pass over this list instead of a
        per-event attribute lookup loop.  ``attr`` must be in the batch's
        layout (it is the union of filter and aggregate reads, so every
        aggregate-tracked attribute qualifies).
        """
        column = self.columns[attr]
        if rows is None:
            rows = self.relevant
        return [column[i] for i in rows]

    # -- group sharding ------------------------------------------------------
    def count_groups(self, into: "dict[tuple, int]") -> None:
        """Accumulate this batch's relevant rows per group key into ``into``.

        One column pass over the pre-interned ``group_keys`` at the
        type-relevant indices — the per-group load statistic the greedy
        :class:`~repro.executor.sharding.ShardPlanner` balances on.  Batches
        without a ``group_keys`` column (no partition attributes) contribute
        nothing: an ungrouped workload has a single implicit group and
        cannot be sharded.
        """
        keys = self.group_keys
        if keys is None:
            return
        for i in self.relevant:
            key = keys[i]
            into[key] = into.get(key, 0) + 1

    def slice_by_shard(
        self, assignment: "dict[tuple, int]", slices: "list[list[Event]]"
    ) -> None:
        """Route this batch's relevant rows into per-shard event lists.

        Appends each type-relevant row's boxed event to
        ``slices[assignment[group_key]]``, preserving batch (and therefore
        stream) order within every shard.  Rows that are irrelevant by type
        never reach any shard — they cannot contribute to any result, so the
        worker engines are fed pre-thinned slices.  Filter predicates are
        *not* evaluated here: slicing is a pure column pass, and each worker
        runs its own compiled kernels over its slice.
        """
        keys = self.group_keys
        if keys is None:
            return
        events = self.events
        for i in self.relevant:
            slices[assignment[keys[i]]].append(events[i])

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnarBatch(t={self.timestamp}, {self.size} events)"


def columnar_batches(
    events: "EventStream | Iterable[Event]",
    layout: ColumnLayout,
) -> Iterator[ColumnarBatch]:
    """Yield :class:`ColumnarBatch` per timestamp, lookahead-free.

    In-memory :class:`~repro.events.stream.EventStream` inputs are served
    from the stream's per-layout cache (built once, reused across runs);
    arbitrary iterables are converted on the fly with the same memory bound
    as :func:`~repro.events.stream.timestamp_batches` — only the current
    batch is materialised.
    """
    from .stream import EventStream, timestamp_batches  # local: stream imports this module

    if isinstance(events, EventStream):
        yield from events.columnar_batches(layout)
        return
    interner: dict[tuple, tuple] = {}
    for timestamp, batch in timestamp_batches(events):
        yield ColumnarBatch.from_events(timestamp, batch, layout, interner)
        if len(interner) > _INTERNER_LIMIT:
            interner = {}
