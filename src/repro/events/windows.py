"""Sliding window semantics (WITHIN / SLIDE clauses).

A query window is defined by its length ``size`` (WITHIN) and its ``slide``
(SLIDE).  Window instances start at multiples of ``slide``: the ``k``-th
instance covers the half-open interval ``[k * slide, k * slide + size)``.
A complete event sequence belongs to a window instance if *all* of its events
fall inside the interval; because matched events are time-ordered it suffices
that the START and END events do (a fact the paper's expiration technique
relies on, Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["SlidingWindow", "WindowInstance"]


@dataclass(frozen=True, slots=True, order=True)
class WindowInstance:
    """One concrete window: the half-open time interval ``[start, end)``."""

    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, timestamp: int) -> bool:
        return self.start <= timestamp < self.end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start},{self.end})"


@dataclass(frozen=True, slots=True)
class SlidingWindow:
    """A sliding window specification.

    Parameters
    ----------
    size:
        Window length (WITHIN clause), in stream time units.
    slide:
        Slide step (SLIDE clause).  ``slide == size`` yields tumbling windows.
    """

    size: int
    slide: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"window size must be positive, got {self.size}")
        if self.slide <= 0:
            raise ValueError(f"window slide must be positive, got {self.slide}")
        if self.slide > self.size:
            raise ValueError(
                f"window slide ({self.slide}) larger than size ({self.size}) would drop events"
            )

    @property
    def is_tumbling(self) -> bool:
        return self.size == self.slide

    @property
    def max_overlap(self) -> int:
        """Maximum number of window instances a single timestamp belongs to."""
        return -(-self.size // self.slide)  # ceil division

    def instances_containing(self, timestamp: int) -> list[WindowInstance]:
        """All window instances whose interval contains ``timestamp``.

        Examples
        --------
        >>> SlidingWindow(size=4, slide=1).instances_containing(2)
        [[0,4), [1,5), [2,6)]
        """
        if timestamp < 0:
            raise ValueError("timestamps are non-negative")
        last_start = (timestamp // self.slide) * self.slide
        instances = []
        start = last_start
        while start >= 0 and start + self.size > timestamp:
            instances.append(WindowInstance(start, start + self.size))
            start -= self.slide
        instances.reverse()
        return instances

    def instance_starting_at(self, start: int) -> WindowInstance:
        if start % self.slide != 0:
            raise ValueError(f"window instances start at multiples of slide={self.slide}")
        return WindowInstance(start, start + self.size)

    def instances_between(self, start_time: int, end_time: int) -> Iterator[WindowInstance]:
        """Yield all window instances overlapping ``[start_time, end_time]``."""
        if end_time < start_time:
            return
        first_start = max(0, ((start_time - self.size) // self.slide + 1) * self.slide)
        start = first_start
        while start <= end_time:
            yield WindowInstance(start, start + self.size)
            start += self.slide

    def covers_span(self, start_ts: int, end_ts: int) -> list[WindowInstance]:
        """Window instances containing the whole span ``[start_ts, end_ts]``.

        Used to assign a complete sequence (identified by its START and END
        timestamps) to the windows it belongs to.
        """
        if end_ts < start_ts:
            raise ValueError("end_ts must be >= start_ts")
        return [w for w in self.instances_containing(start_ts) if w.contains(end_ts)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SlidingWindow(WITHIN {self.size} SLIDE {self.slide})"
