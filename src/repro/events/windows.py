"""Sliding window semantics (WITHIN / SLIDE clauses).

A query window is defined by its length ``size`` (WITHIN) and its ``slide``
(SLIDE).  Window instances start at multiples of ``slide``: the ``k``-th
instance covers the half-open interval ``[k * slide, k * slide + size)``.
A complete event sequence belongs to a window instance if *all* of its events
fall inside the interval; because matched events are time-ordered it suffices
that the START and END events do (a fact the paper's expiration technique
relies on, Section 3.2).

Besides per-timestamp instance enumeration this module defines the window's
**pane geometry** (Li et al.-style panes): the timeline is tiled into
non-overlapping panes of width ``gcd(size, slide)``, and — because both
``size`` and ``slide`` are multiples of that width — every window instance is
an *exact* union of ``size / gcd`` consecutive panes.  The pane-partitioned
engine mode relies on this tiling to process each event once per pane instead
of once per covering window instance.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Iterator

__all__ = ["SlidingWindow", "WindowInstance", "WindowCursor"]


@dataclass(frozen=True, slots=True, order=True)
class WindowInstance:
    """One concrete window: the half-open time interval ``[start, end)``."""

    start: int
    end: int

    @property
    def size(self) -> int:
        """Length of the instance's interval in time units."""
        return self.end - self.start

    def contains(self, timestamp: int) -> bool:
        """Whether ``timestamp`` lies inside ``[start, end)`` (end exclusive)."""
        return self.start <= timestamp < self.end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start},{self.end})"


@dataclass(frozen=True, slots=True)
class SlidingWindow:
    """A sliding window specification.

    Parameters
    ----------
    size:
        Window length (WITHIN clause), in stream time units.
    slide:
        Slide step (SLIDE clause).  ``slide == size`` yields tumbling windows.
    """

    size: int
    slide: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"window size must be positive, got {self.size}")
        if self.slide <= 0:
            raise ValueError(f"window slide must be positive, got {self.slide}")
        if self.slide > self.size:
            raise ValueError(
                f"window slide ({self.slide}) larger than size ({self.size}) would drop events"
            )

    @property
    def is_tumbling(self) -> bool:
        """Whether instances never overlap (``slide == size``)."""
        return self.size == self.slide

    @property
    def max_overlap(self) -> int:
        """Maximum number of window instances a single timestamp belongs to."""
        return -(-self.size // self.slide)  # ceil division

    def instances_containing(self, timestamp: int) -> list[WindowInstance]:
        """All window instances whose interval contains ``timestamp``.

        Instances are half-open: a timestamp on a window's *end* boundary
        belongs to the next instance(s), never the ending one.

        Examples
        --------
        >>> SlidingWindow(size=4, slide=1).instances_containing(2)
        [[0,4), [1,5), [2,6)]

        Window-edge semantics (the pane refactor relies on these exactly):
        ``t = 4`` is excluded from ``[0,4)`` but included in ``[4,8)``, and a
        timestamp inside the first slide belongs only to the instances
        starting at non-negative multiples of ``slide``:

        >>> SlidingWindow(size=4, slide=2).instances_containing(4)
        [[2,6), [4,8)]
        >>> SlidingWindow(size=4, slide=2).instances_containing(1)
        [[0,4)]
        >>> SlidingWindow(size=6, slide=3).instances_containing(3)
        [[0,6), [3,9)]
        """
        if timestamp < 0:
            raise ValueError("timestamps are non-negative")
        last_start = (timestamp // self.slide) * self.slide
        instances = []
        start = last_start
        while start >= 0 and start + self.size > timestamp:
            instances.append(WindowInstance(start, start + self.size))
            start -= self.slide
        instances.reverse()
        return instances

    def instance_starting_at(self, start: int) -> WindowInstance:
        """The instance ``[start, start + size)``; ``start`` must be on-slide."""
        if start % self.slide != 0:
            raise ValueError(f"window instances start at multiples of slide={self.slide}")
        return WindowInstance(start, start + self.size)

    def instances_between(self, start_time: int, end_time: int) -> Iterator[WindowInstance]:
        """Yield all window instances overlapping ``[start_time, end_time]``.

        Both endpoints are inclusive timestamps: the first instance yielded is
        the earliest one containing ``start_time`` and the last one starts at
        the largest non-negative multiple of ``slide`` that is ``<=
        end_time``.

        Examples
        --------
        >>> list(SlidingWindow(size=4, slide=2).instances_between(4, 4))
        [[2,6), [4,8)]
        >>> list(SlidingWindow(size=4, slide=2).instances_between(5, 4))
        []
        >>> list(SlidingWindow(size=6, slide=2).instances_between(0, 1))
        [[0,6)]
        """
        if end_time < start_time:
            return
        first_start = max(0, ((start_time - self.size) // self.slide + 1) * self.slide)
        start = first_start
        while start <= end_time:
            yield WindowInstance(start, start + self.size)
            start += self.slide

    # -- pane geometry -----------------------------------------------------------
    @property
    def pane_width(self) -> int:
        """Width of the non-overlapping panes tiling the timeline.

        The pane width is ``gcd(size, slide)``, the largest step such that
        every window-instance boundary (all multiples of ``slide``, plus
        ``size`` offsets thereof) falls on a pane boundary.  Pane ``p`` covers
        ``[p * pane_width, (p + 1) * pane_width)``; consecutive panes tile the
        timeline with no gaps or overlaps.

        >>> SlidingWindow(size=12, slide=4).pane_width
        4
        >>> SlidingWindow(size=10, slide=4).pane_width  # slide does not divide size
        2
        >>> SlidingWindow(size=7, slide=3).pane_width   # degenerate: unit panes
        1
        """
        return math.gcd(self.size, self.slide)

    @property
    def panes_per_window(self) -> int:
        """Number of panes exactly covering one window instance."""
        return self.size // self.pane_width

    def pane_index_of(self, timestamp: int) -> int:
        """Index of the pane containing ``timestamp``."""
        if timestamp < 0:
            raise ValueError("timestamps are non-negative")
        return timestamp // self.pane_width

    def pane_span(self, pane_index: int) -> tuple[int, int]:
        """The half-open interval ``[start, end)`` of pane ``pane_index``."""
        width = self.pane_width
        return pane_index * width, (pane_index + 1) * width

    def panes_covering(self, instance: WindowInstance) -> range:
        """Indexes of the panes whose union is exactly ``instance``.

        Because window boundaries are multiples of the pane width, the panes
        returned are each fully contained in the instance and together tile
        it without gaps.

        >>> window = SlidingWindow(size=4, slide=2)
        >>> list(window.panes_covering(WindowInstance(2, 6)))
        [1, 2]
        """
        width = self.pane_width
        if instance.start % width or instance.end % width:
            raise ValueError(
                f"window {instance!r} is not aligned to the pane width {width}"
            )
        return range(instance.start // width, instance.end // width)

    def instances_covering_pane(self, pane_index: int) -> list[WindowInstance]:
        """All window instances that fully contain pane ``pane_index``.

        The inverse of :meth:`panes_covering`: exactly the instances ``w``
        with ``pane_index in self.panes_covering(w)``, in ascending order.
        Every timestamp of the pane belongs to precisely these instances
        (panes never straddle a window boundary), which is what lets the
        pane-partitioned engine route a pane's aggregates instead of routing
        each event to its covering instances.
        """
        if pane_index < 0:
            raise ValueError("pane indexes are non-negative")
        pane_start, pane_end = self.pane_span(pane_index)
        # Window starts are multiples of slide with start <= pane_start and
        # start + size >= pane_end; since size >= pane width, the containment
        # test collapses to the instance containing the pane's first timestamp.
        return [
            instance
            for instance in self.instances_containing(pane_start)
            if instance.end >= pane_end
        ]

    def covers_span(self, start_ts: int, end_ts: int) -> list[WindowInstance]:
        """Window instances containing the whole span ``[start_ts, end_ts]``.

        Used to assign a complete sequence (identified by its START and END
        timestamps) to the windows it belongs to.
        """
        if end_ts < start_ts:
            raise ValueError("end_ts must be >= start_ts")
        return [w for w in self.instances_containing(start_ts) if w.contains(end_ts)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SlidingWindow(WITHIN {self.size} SLIDE {self.slide})"


class WindowCursor:
    """Incremental :meth:`SlidingWindow.instances_containing` for monotone time.

    Streams are replayed in non-decreasing timestamp order, so the set of
    window instances containing the current timestamp changes only at its
    edges: instances whose end has passed drop off the front, and newly
    started instances append at the back.  The cursor maintains that set in a
    deque — :meth:`advance` costs O(instances opened + instances closed)
    across a whole run (amortised O(1) per batch) instead of rebuilding the
    O(``max_overlap``) instance list for every event, which is what the
    engine's per-event loop used to do.

    Examples
    --------
    >>> cursor = WindowCursor(SlidingWindow(size=4, slide=2))
    >>> list(cursor.advance(2))
    [[0,4), [2,6)]
    >>> list(cursor.advance(4))
    [[2,6), [4,8)]
    >>> list(cursor.advance(11))  # gaps fast-forward without scanning
    [[8,12), [10,14)]
    """

    __slots__ = ("window", "_instances", "_next_start", "_timestamp")

    def __init__(self, window: SlidingWindow) -> None:
        self.window = window
        self._instances: deque[WindowInstance] = deque()
        self._next_start = 0
        self._timestamp = -1

    @property
    def timestamp(self) -> int:
        """The last timestamp advanced to (-1 before the first advance)."""
        return self._timestamp

    def advance(self, timestamp: int) -> deque[WindowInstance]:
        """Instances containing ``timestamp`` (ascending by start).

        Timestamps must be non-decreasing across calls; the returned deque is
        the cursor's live state — iterate it, do not mutate it.
        """
        if timestamp < self._timestamp:
            raise ValueError(
                f"WindowCursor requires monotone timestamps "
                f"({timestamp} after {self._timestamp})"
            )
        self._timestamp = timestamp
        instances = self._instances
        while instances and instances[0].end <= timestamp:
            instances.popleft()
        size = self.window.size
        slide = self.window.slide
        next_start = self._next_start
        lowest = timestamp - size  # starts must satisfy start > timestamp - size
        if next_start <= lowest:
            # Fast-forward over a stream gap: skip instances that would be
            # born already expired (keeps advance O(overlap), not O(gap)).
            next_start = max(0, (lowest // slide + 1) * slide)
        while next_start <= timestamp:
            instances.append(WindowInstance(next_start, next_start + size))
            next_start += slide
        self._next_start = next_start
        return instances

    # -- checkpointing -----------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot the cursor position as a JSON-safe dict.

        Only the two scalars are persisted; the live instance deque is fully
        determined by them (it always equals
        ``window.instances_containing(timestamp)``) and is rebuilt on
        :meth:`restore_state`.
        """
        return {"next_start": self._next_start, "timestamp": self._timestamp}

    def restore_state(self, state: dict) -> None:
        """Restore a position exported by :meth:`export_state`."""
        self._next_start = state["next_start"]
        self._timestamp = state["timestamp"]
        self._instances.clear()
        if self._timestamp >= 0:
            self._instances.extend(self.window.instances_containing(self._timestamp))
