"""Bounded-lateness disorder tolerance: watermarks and the reorder buffer.

Every layer of this reproduction assumes in-order arrival — the paper does,
:class:`~repro.events.stream.EventStream` silently re-sorts its input up
front, and the engine's :class:`~repro.events.windows.WindowCursor` hard-fails
on the first timestamp regression.  Real traffic is neither sorted nor
bounded, so this module adds the standard streaming answer: a **bounded
lateness** contract enforced by a watermark-driven reorder buffer.

The contract
------------

* ``max_lateness`` is the producer's promise: an event with timestamp ``t``
  arrives before any event with timestamp ``> t + max_lateness``.
* The **watermark** is derived from what actually arrived: it is
  ``max_seen_timestamp - max_lateness`` (undefined until the first event).
  An arriving event is *late* iff its timestamp is **strictly below** the
  watermark — an event exactly at the watermark is still admissible.
* A buffered timestamp batch is **releasable** iff its timestamp is strictly
  below the watermark: only then can no admissible future event still join
  (or precede) it.  Released batches therefore leave the buffer in sorted
  timestamp order, with the events of each batch in canonical
  ``(timestamp, event_id)`` order — byte-identical to what a pre-sorted
  stream would have produced.

Late events (beyond the promise) hit the **late policy**:

* ``"raise"`` (default) — :class:`DisorderError` naming the offending
  timestamp and the current watermark; the producer broke its promise and
  silent repair would be a correctness lie.
* ``"drop"`` — count the event in ``events_late`` *and* ``events_dropped``
  and discard it.
* a callable — count it in ``events_late`` only and hand the event to the
  callback (a side channel: dead-letter queue, logger, compensating job).

:class:`ReorderFeed` packages the buffer as an iterator of released
``(timestamp, [events])`` batches over an arbitrary arrival-ordered source,
popping **at most one batch per step and never reading ahead** — so at every
suspension point ``processed + buffered + dropped == source_consumed``, the
invariant that lets replay checkpoints snapshot the buffer mid-run
(``docs/disorder.md`` walks through the whole contract).
"""

from __future__ import annotations

import heapq
import random
from bisect import insort
from typing import Callable, Iterable, Iterator

from .event import Event
from .log import event_from_record, event_to_record

__all__ = [
    "DisorderError",
    "LatePolicy",
    "ReorderBuffer",
    "ReorderFeed",
    "bounded_shuffle",
    "validate_late_policy",
]

#: A late policy is ``"raise"``, ``"drop"``, or a side-channel callable
#: receiving each late event.
LatePolicy = "str | Callable[[Event], None]"


class DisorderError(ValueError):
    """An event stream violated its disorder contract.

    Raised when an event arrives later than ``max_lateness`` allows (under
    the ``"raise"`` late policy), or when a timestamp regression reaches an
    engine session directly — i.e. without a reorder buffer in front of it.
    """


def validate_late_policy(policy) -> None:
    """Reject anything that is not ``"raise"``, ``"drop"``, or a callable."""
    if policy in ("raise", "drop") or callable(policy):
        return
    raise ValueError(
        f"late_policy must be 'raise', 'drop', or a callable, got {policy!r}"
    )


class _NullMetrics:
    """Metrics sink of last resort (counts are kept but go nowhere)."""

    events_late = 0
    events_dropped = 0


class ReorderBuffer:
    """Holds out-of-order events until the watermark passes their timestamp.

    The buffer is a pure data structure — no policy, no metrics: ``push``
    refuses late events (returns ``False``), ``pop_ready`` releases the
    oldest batch the watermark has passed, ``pop_drain`` flushes at end of
    stream.  :class:`ReorderFeed` wires it to a source and a late policy.

    Within a timestamp, events are kept in canonical ``event_id`` order
    (insertion by bisect), so a released batch is byte-identical to the
    batch a pre-sorted :class:`~repro.events.stream.EventStream` would have
    yielded — the disorder determinism contract.
    """

    __slots__ = ("max_lateness", "_batches", "_heap", "_max_seen", "_buffered")

    def __init__(self, max_lateness: int) -> None:
        if max_lateness < 0:
            raise ValueError(f"max_lateness must be >= 0, got {max_lateness}")
        self.max_lateness = max_lateness
        #: Pending events per timestamp, each list in event_id order.
        self._batches: dict[int, list[Event]] = {}
        #: Min-heap over the pending timestamps.
        self._heap: list[int] = []
        #: Highest timestamp ever pushed (-1 = nothing yet).
        self._max_seen = -1
        self._buffered = 0

    @property
    def watermark(self) -> "int | None":
        """``max_seen - max_lateness``, or ``None`` before the first event."""
        if self._max_seen < 0:
            return None
        return self._max_seen - self.max_lateness

    @property
    def max_seen(self) -> int:
        """Highest timestamp pushed so far (-1 before the first event)."""
        return self._max_seen

    def is_late(self, timestamp: int) -> bool:
        """Whether ``timestamp`` is strictly below the current watermark."""
        watermark = self.watermark
        return watermark is not None and timestamp < watermark

    def push(self, event: Event) -> bool:
        """Buffer ``event``; ``False`` (not buffered) when it is late."""
        timestamp = event.timestamp
        if self.is_late(timestamp):
            return False
        batch = self._batches.get(timestamp)
        if batch is None:
            self._batches[timestamp] = [event]
            heapq.heappush(self._heap, timestamp)
        else:
            insort(batch, event, key=lambda held: held.event_id)
        if timestamp > self._max_seen:
            self._max_seen = timestamp
        self._buffered += 1
        return True

    def pop_ready(self) -> "tuple[int, list[Event]] | None":
        """Release the oldest batch strictly below the watermark, if any."""
        watermark = self.watermark
        if watermark is None or not self._heap or self._heap[0] >= watermark:
            return None
        return self._pop()

    def pop_drain(self) -> "tuple[int, list[Event]] | None":
        """Release the oldest batch regardless of the watermark (end of stream)."""
        if not self._heap:
            return None
        return self._pop()

    def _pop(self) -> tuple[int, list[Event]]:
        timestamp = heapq.heappop(self._heap)
        batch = self._batches.pop(timestamp)
        self._buffered -= len(batch)
        return timestamp, batch

    def __len__(self) -> int:
        """Number of buffered (pushed but not yet released) events."""
        return self._buffered

    # -- checkpointing -----------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot the buffer as a JSON-safe dict.

        Pending batches are listed in ascending timestamp order (events in
        their canonical in-batch order) using the event-log record codec, so
        the export is independent of arrival order — the property that makes
        a resumed run's state hash comparable to the full run's.
        """
        return {
            "max_lateness": self.max_lateness,
            "max_seen": self._max_seen,
            "batches": [
                [timestamp, [event_to_record(event) for event in self._batches[timestamp]]]
                for timestamp in sorted(self._batches)
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        if state["max_lateness"] != self.max_lateness:
            raise ValueError(
                f"reorder snapshot was taken with max_lateness="
                f"{state['max_lateness']}, this buffer uses {self.max_lateness}"
            )
        self._batches = {
            timestamp: [event_from_record(record) for record in records]
            for timestamp, records in state["batches"]
        }
        self._heap = sorted(self._batches)
        self._max_seen = state["max_seen"]
        self._buffered = sum(len(batch) for batch in self._batches.values())


class ReorderFeed:
    """Watermark-released ``(timestamp, [events])`` batches over a disordered source.

    The feed advances lazily and never reads ahead of what it must: each
    ``next()`` first releases an already-ready batch (none is ever skipped),
    and only when none is ready does it consume source events — stopping at
    the first event whose push makes a batch releasable.  When the source is
    exhausted the buffer drains in timestamp order.  Consequently
    ``processed + buffered + dropped == source_consumed`` holds at every
    batch boundary, which is what lets checkpoints pair a source position
    (``source_consumed``) with a buffer snapshot and resume exactly.

    Parameters
    ----------
    source:
        Any event iterable in *arrival* order (not timestamp order).
    buffer:
        The :class:`ReorderBuffer` to run the watermark protocol on — pass a
        restored buffer to resume mid-stream.
    late_policy:
        ``"raise"`` / ``"drop"`` / callable, see the module docstring.
    metrics:
        Any object with mutable integer ``events_late`` and
        ``events_dropped`` attributes (the engine passes its
        :class:`~repro.executor.metrics.MetricsCollector`).
    """

    def __init__(
        self,
        source: Iterable[Event],
        buffer: ReorderBuffer,
        late_policy="raise",
        metrics=None,
    ) -> None:
        validate_late_policy(late_policy)
        self._source = iter(source)
        self.buffer = buffer
        self.late_policy = late_policy
        self.metrics = metrics if metrics is not None else _NullMetrics()
        #: Source events consumed so far (processed + buffered + dropped).
        self.source_consumed = 0

    def __iter__(self) -> "Iterator[tuple[int, list[Event]]]":
        return self

    def __next__(self) -> "tuple[int, list[Event]]":
        buffer = self.buffer
        ready = buffer.pop_ready()
        if ready is not None:
            return ready
        for event in self._source:
            self.source_consumed += 1
            if buffer.push(event):
                ready = buffer.pop_ready()
                if ready is not None:
                    return ready
            else:
                self._handle_late(event)
        drained = buffer.pop_drain()
        if drained is not None:
            return drained
        raise StopIteration

    def _handle_late(self, event: Event) -> None:
        policy = self.late_policy
        if policy == "raise":
            raise DisorderError(
                f"event {event.event_id} at timestamp {event.timestamp} arrived "
                f"behind watermark {self.buffer.watermark} "
                f"(max seen timestamp {self.buffer.max_seen}, "
                f"max_lateness {self.buffer.max_lateness}): the stream broke its "
                f"bounded-lateness promise; raise max_lateness or choose a "
                f"'drop'/callback late policy (docs/disorder.md)"
            )
        self.metrics.events_late += 1
        if policy == "drop":
            self.metrics.events_dropped += 1
        else:
            policy(event)


def bounded_shuffle(
    events: Iterable[Event], max_lateness: int, seed: int
) -> list[Event]:
    """A seeded arrival order in which no event is ever late for ``max_lateness``.

    Each event's arrival key is ``timestamp + jitter`` with jitter drawn
    uniformly from ``[0, max_lateness]``; the sort is stable, so equal keys
    keep their input order.  For any event ``a`` delivered at key ``k_a``,
    every earlier-delivered event ``b`` satisfies
    ``b.timestamp <= k_b <= k_a <= a.timestamp + max_lateness`` — hence the
    watermark at ``a``'s arrival is at most ``a.timestamp`` and ``a`` is
    never (strictly) behind it.  Used by the disorder differential grid and
    the property suite to generate adversarial-but-legal arrival orders.
    """
    if max_lateness < 0:
        raise ValueError(f"max_lateness must be >= 0, got {max_lateness}")
    rng = random.Random(seed)
    ordered = list(events)
    keyed = [(event.timestamp + rng.randint(0, max_lateness), index) for index, event in enumerate(ordered)]
    return [ordered[index] for _key, index in sorted(keyed, key=lambda pair: (pair[0], pair[1]))]
