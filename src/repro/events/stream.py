"""Event stream abstractions.

An :class:`EventStream` is an ordered, replayable sequence of
:class:`~repro.events.event.Event` objects.  Executors consume streams event
by event; dataset generators and tests build them from lists, generator
functions, or by merging several per-type sub-streams.

The class intentionally stores events in memory: the paper's evaluation
replays bounded windows of real/synthetic data (hundreds of thousands of
events), which comfortably fits the benchmark scales used here.
"""

from __future__ import annotations

import bisect
import itertools
import random
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from .event import Event, EventType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (columnar)
    from .columnar import ColumnLayout, ColumnarBatch

__all__ = [
    "EventStream",
    "StreamStatistics",
    "merge_streams",
    "interleave_by_timestamp",
    "timestamp_batches",
]

#: Distinct column layouts cached per stream (LRU-evicted beyond this);
#: bounds resident memory when one long-lived stream serves many workloads.
_COLUMNAR_CACHE_LIMIT = 4


def timestamp_batches(
    events: "EventStream | Iterable[Event]",
) -> Iterator[tuple[int, list[Event]]]:
    """Group a timestamp-ordered event iterable into same-timestamp batches.

    Yields ``(timestamp, [events...])`` pairs without materialising the
    stream: only the current batch (plus the one event of lookahead that
    terminates it) is held in memory, so the executors can consume unbounded
    iterables and generators as well as in-memory :class:`EventStream`\\ s.
    """
    for timestamp, group in itertools.groupby(events, key=lambda event: event.timestamp):
        yield timestamp, list(group)


@dataclass(frozen=True)
class StreamStatistics:
    """Summary statistics of a stream used by the cost model and reports."""

    total_events: int
    duration: int
    counts_per_type: dict[EventType, int]

    @property
    def overall_rate(self) -> float:
        """Average number of events per time unit across all types."""
        if self.duration <= 0:
            return float(self.total_events)
        return self.total_events / self.duration

    def rate_of(self, event_type: EventType) -> float:
        """Average number of events of ``event_type`` per time unit."""
        if self.duration <= 0:
            return float(self.counts_per_type.get(event_type, 0))
        return self.counts_per_type.get(event_type, 0) / self.duration


class EventStream:
    """An in-memory, timestamp-ordered stream of events.

    Parameters
    ----------
    events:
        Any iterable of events.  They are sorted by ``(timestamp, event_id)``
        so that replay order is deterministic.
    name:
        Optional label used in reports and benchmark output.
    """

    def __init__(self, events: Iterable[Event] = (), name: str = "stream") -> None:
        self._events: list[Event] = sorted(events, key=lambda e: (e.timestamp, e.event_id))
        self.name = name
        #: Per-layout cache of columnar batches (built lazily, invalidated on
        #: mutation); replaying an in-memory stream pays column extraction once.
        self._columnar_cache: dict["ColumnLayout", list["ColumnarBatch"]] = {}

    # -- container protocol -------------------------------------------------
    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def __bool__(self) -> bool:
        return bool(self._events)

    # -- construction helpers ----------------------------------------------
    @classmethod
    def from_tuples(
        cls,
        rows: Iterable[tuple],
        attribute_names: Sequence[str] = (),
        name: str = "stream",
    ) -> "EventStream":
        """Build a stream from ``(type, timestamp, attr1, attr2, ...)`` tuples.

        Examples
        --------
        >>> s = EventStream.from_tuples([("A", 1, 7), ("B", 2, 7)], ["vehicle"])
        >>> len(s)
        2
        """
        events = []
        for event_id, row in enumerate(rows):
            event_type, timestamp, *values = row
            attributes = dict(zip(attribute_names, values))
            events.append(Event(event_type, timestamp, attributes, event_id))
        return cls(events, name=name)

    def append(self, event: Event) -> None:
        """Insert an event keeping ``(timestamp, event_id)`` order.

        Uses the same sort key as the constructor and :meth:`extend`, so a
        stream grown event by event is indistinguishable from one built in a
        single pass — a precondition for deterministic replay when timestamps
        tie.
        """
        position = bisect.bisect_right(
            self._events,
            (event.timestamp, event.event_id),
            key=lambda e: (e.timestamp, e.event_id),
        )
        self._events.insert(position, event)
        self._columnar_cache.clear()

    def extend(self, events: Iterable[Event]) -> None:
        """Add many events, re-sorting and invalidating the columnar cache."""
        self._events = sorted(
            list(self._events) + list(events), key=lambda e: (e.timestamp, e.event_id)
        )
        self._columnar_cache.clear()

    # -- columnar view --------------------------------------------------------
    def columnar_batches(self, layout: "ColumnLayout") -> list["ColumnarBatch"]:
        """The stream as columnar timestamp batches for ``layout``.

        Built on first use and cached per layout (layouts are value objects),
        so repeated engine runs — and every workload compiled to the same
        layout — share one column extraction.  The cache holds the last few
        distinct layouts (LRU: a hit refreshes the entry, so a hot layout
        survives any number of cold ones; bounded so one stream serving many
        workloads cannot retain unbounded column copies) and is invalidated
        by :meth:`append`/:meth:`extend`.
        """
        cached = self._columnar_cache.get(layout)
        if cached is not None:
            # Move-to-end: dicts preserve insertion order, so re-inserting
            # marks the layout most-recently-used for the eviction scan below.
            self._columnar_cache[layout] = self._columnar_cache.pop(layout)
        else:
            from .columnar import ColumnarBatch

            interner: dict[tuple, tuple] = {}
            cached = [
                ColumnarBatch.from_events(timestamp, batch, layout, interner)
                for timestamp, batch in timestamp_batches(self._events)
            ]
            while len(self._columnar_cache) >= _COLUMNAR_CACHE_LIMIT:
                self._columnar_cache.pop(next(iter(self._columnar_cache)))
            self._columnar_cache[layout] = cached
        return cached

    # -- views ---------------------------------------------------------------
    def events(self) -> tuple[Event, ...]:
        """Return the events as an immutable tuple."""
        return tuple(self._events)

    def between(self, start: int, end: int) -> "EventStream":
        """Return the sub-stream with ``start <= timestamp < end``."""
        subset = [e for e in self._events if start <= e.timestamp < end]
        return EventStream(subset, name=f"{self.name}[{start}:{end}]")

    def of_types(self, event_types: Iterable[EventType]) -> "EventStream":
        """Return the sub-stream restricted to the given event types."""
        wanted = set(event_types)
        subset = [e for e in self._events if e.event_type in wanted]
        return EventStream(subset, name=f"{self.name}|{'+'.join(sorted(wanted))}")

    def sample(self, fraction: float, seed: int = 0) -> "EventStream":
        """Return a random sub-stream containing roughly ``fraction`` of events."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = random.Random(seed)
        subset = [e for e in self._events if rng.random() < fraction]
        return EventStream(subset, name=f"{self.name}~{fraction}")

    def event_types(self) -> tuple[EventType, ...]:
        """The distinct event types occurring in the stream, sorted."""
        return tuple(sorted({e.event_type for e in self._events}))

    # -- statistics ----------------------------------------------------------
    @property
    def start_time(self) -> int:
        """Timestamp of the earliest event (0 for an empty stream)."""
        return self._events[0].timestamp if self._events else 0

    @property
    def end_time(self) -> int:
        """Timestamp of the latest event (0 for an empty stream)."""
        return self._events[-1].timestamp if self._events else 0

    @property
    def duration(self) -> int:
        """Span of the stream in time units (at least 1 for non-empty streams)."""
        if not self._events:
            return 0
        return max(1, self.end_time - self.start_time + 1)

    def statistics(self) -> StreamStatistics:
        """Event totals and per-type counts (the cost model's rate inputs)."""
        counts = Counter(e.event_type for e in self._events)
        return StreamStatistics(
            total_events=len(self._events),
            duration=self.duration,
            counts_per_type=dict(counts),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventStream({self.name!r}, {len(self._events)} events)"


def merge_streams(*streams: EventStream, name: str = "merged") -> EventStream:
    """Merge several streams into one timestamp-ordered stream."""
    events: list[Event] = []
    for stream in streams:
        events.extend(stream.events())
    return EventStream(events, name=name)


def interleave_by_timestamp(
    producers: dict[EventType, Callable[[int], dict]],
    rate_per_type: dict[EventType, float],
    duration: int,
    seed: int = 0,
    name: str = "synthetic",
) -> EventStream:
    """Generate a stream with Poisson-like arrivals per event type.

    Parameters
    ----------
    producers:
        Maps an event type to a callable producing the attribute dict for a
        given timestamp.
    rate_per_type:
        Expected number of events per time unit for each type.
    duration:
        Number of time units to simulate (timestamps ``0..duration-1``).
    seed:
        Seed of the pseudo-random generator (deterministic streams).
    """
    rng = random.Random(seed)
    events: list[Event] = []
    event_id = 0
    for timestamp in range(duration):
        for event_type, rate in rate_per_type.items():
            arrivals = int(rate)
            if rng.random() < (rate - arrivals):
                arrivals += 1
            for _ in range(arrivals):
                attributes = producers[event_type](timestamp) if event_type in producers else {}
                events.append(Event(event_type, timestamp, attributes, event_id))
                event_id += 1
    return EventStream(events, name=name)
