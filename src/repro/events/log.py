"""Durable JSONL event log: record a stream once, replay it byte-identically.

The log is a plain-text, append-only JSON Lines file:

* line 1 is a **header** object ``{"format": "repro-event-log",
  "version": 1, "stream": <name>}`` that readers validate before touching
  any event;
* every following line is one event with a **fixed field order**
  ``{"t": ..., "type": ..., "id": ..., "attrs": {...}}`` where ``attrs``
  keys are sorted and values are restricted to JSON scalars
  (str/int/float/bool/None).  Compact separators and sorted keys make the
  encoding canonical: the same stream always produces the same bytes, so
  logs can be diffed, hashed and deduplicated.

:class:`EventLogWriter` appends events and fsyncs every ``fsync_every``
events (durability batching); :class:`EventLogReader` validates the header,
iterates lazily and can skip ahead to an event index, which is how
checkpoint resume seeks to ``events_consumed`` without re-parsing attribute
payloads into :class:`~repro.events.event.Event` objects.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from .event import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .stream import EventStream

__all__ = [
    "LOG_FORMAT",
    "LOG_VERSION",
    "EventLogError",
    "EventLogWriter",
    "EventLogReader",
    "event_to_record",
    "event_from_record",
    "write_event_log",
    "read_event_log",
]

#: Format marker stored in (and demanded of) every log header.
LOG_FORMAT = "repro-event-log"

#: Current schema version; readers reject logs from a different version.
LOG_VERSION = 1

#: Compact, deterministic JSON encoding shared by header and event lines.
_JSON_SEPARATORS = (",", ":")

#: Attribute value types the log can represent losslessly.
_SCALAR_TYPES = (str, int, float, bool, type(None))


class EventLogError(ValueError):
    """Raised for malformed logs: bad header, version skew, non-scalar attrs."""


def event_to_record(event: Event) -> dict:
    """Encode an event as its canonical log record (fixed field order).

    Raises :class:`EventLogError` if any attribute value is not a JSON
    scalar — the log format deliberately refuses values that would not
    round-trip exactly (sets, tuples, custom objects).
    """
    attrs = event.attributes
    for name, value in attrs.items():
        if not isinstance(value, _SCALAR_TYPES):
            raise EventLogError(
                f"attribute {name!r} of event {event.event_id} has non-scalar "
                f"value {value!r} ({type(value).__name__}); the event log only "
                "stores str/int/float/bool/None attributes"
            )
    return {
        "t": event.timestamp,
        "type": event.event_type,
        "id": event.event_id,
        "attrs": {name: attrs[name] for name in sorted(attrs)},
    }


def event_from_record(record: dict) -> Event:
    """Decode one log record back into an :class:`~repro.events.event.Event`."""
    return Event(record["type"], record["t"], dict(record["attrs"]), record["id"])


def _encode_line(payload: dict) -> str:
    return json.dumps(payload, separators=_JSON_SEPARATORS, sort_keys=False, allow_nan=False)


class EventLogWriter:
    """Append-only event log writer with batched fsync.

    Parameters
    ----------
    path:
        File to create (an existing file is truncated; the header is written
        immediately).
    stream_name:
        Recorded in the header; purely descriptive.
    fsync_every:
        Flush + fsync after this many appended events (``0`` disables
        intermediate syncs; close always flushes and syncs).  Batching
        amortises the sync cost while bounding the number of events a crash
        can lose.

    Usable as a context manager::

        with EventLogWriter(path, stream_name=stream.name) as writer:
            for event in stream:
                writer.append(event)
    """

    def __init__(self, path: "str | Path", stream_name: str = "stream", fsync_every: int = 512) -> None:
        if fsync_every < 0:
            raise ValueError("fsync_every must be >= 0")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self.events_written = 0
        self._pending = 0
        self._handle: "io.TextIOWrapper | None" = self.path.open("w", encoding="utf-8")
        header = {"format": LOG_FORMAT, "version": LOG_VERSION, "stream": stream_name}
        self._handle.write(_encode_line(header) + "\n")
        self._sync()

    def append(self, event: Event) -> None:
        """Append one event; syncs when the fsync batch fills up."""
        if self._handle is None:
            raise EventLogError(f"writer for {self.path} is closed")
        self._handle.write(_encode_line(event_to_record(event)) + "\n")
        self.events_written += 1
        self._pending += 1
        if self.fsync_every and self._pending >= self.fsync_every:
            self._sync()

    def extend(self, events: Iterable[Event]) -> None:
        """Append many events (same batched-fsync policy as :meth:`append`)."""
        for event in events:
            self.append(event)

    def _sync(self) -> None:
        assert self._handle is not None
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._pending = 0

    def close(self) -> None:
        """Flush, fsync and close the file (idempotent)."""
        if self._handle is None:
            return
        self._sync()
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class EventLogReader:
    """Seekable reader over a recorded event log.

    The header is validated eagerly on construction.  Iteration is lazy
    (one line at a time), so arbitrarily long logs replay in constant
    memory; :meth:`events_from` skips ``start`` events cheaply (no attribute
    decoding for skipped lines beyond JSON parsing) which is what
    checkpoint resume uses to seek to ``events_consumed``.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        with self.path.open("r", encoding="utf-8") as handle:
            first = handle.readline()
        if not first:
            raise EventLogError(f"{self.path} is empty (missing event-log header)")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as error:
            raise EventLogError(f"{self.path} has an unparseable header line: {error}") from None
        if not isinstance(header, dict) or header.get("format") != LOG_FORMAT:
            raise EventLogError(f"{self.path} is not a {LOG_FORMAT} file")
        if header.get("version") != LOG_VERSION:
            raise EventLogError(
                f"{self.path} has log version {header.get('version')!r}; "
                f"this reader understands version {LOG_VERSION}"
            )
        #: The validated header object (``format``/``version``/``stream``).
        self.header: dict = header

    @property
    def stream_name(self) -> str:
        """Stream name recorded in the header."""
        return self.header.get("stream", "stream")

    def __iter__(self) -> Iterator[Event]:
        return self.events_from(0)

    def events_from(self, start: int) -> Iterator[Event]:
        """Iterate events lazily, skipping the first ``start`` of them."""
        if start < 0:
            raise ValueError("start must be >= 0")
        with self.path.open("r", encoding="utf-8") as handle:
            handle.readline()  # header, validated in __init__
            index = 0
            for line in handle:
                if not line.strip():
                    continue
                if index >= start:
                    yield event_from_record(json.loads(line))
                index += 1

    def count_events(self) -> int:
        """Number of events stored in the log (scans the file)."""
        total = 0
        for _ in self.events_from(0):
            total += 1
        return total

    def read_stream(self) -> "EventStream":
        """Materialise the whole log as an :class:`~repro.events.stream.EventStream`."""
        from .stream import EventStream

        return EventStream(self, name=self.stream_name)


def write_event_log(
    events: "EventStream | Iterable[Event]",
    path: "str | Path",
    stream_name: "str | None" = None,
    fsync_every: int = 512,
) -> int:
    """Record an event iterable to ``path``; returns the number of events.

    When ``stream_name`` is omitted and ``events`` has a ``name`` attribute
    (an :class:`~repro.events.stream.EventStream` does), that name is stored
    in the header.
    """
    if stream_name is None:
        stream_name = getattr(events, "name", "stream")
    with EventLogWriter(path, stream_name=stream_name, fsync_every=fsync_every) as writer:
        writer.extend(events)
        return writer.events_written


def read_event_log(path: "str | Path") -> "EventStream":
    """Read a recorded log back into an :class:`~repro.events.stream.EventStream`."""
    return EventLogReader(path).read_stream()
