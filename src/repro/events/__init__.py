"""Event model substrate: events, schemas, streams, and sliding windows."""

from .columnar import ColumnLayout, ColumnarBatch, columnar_batches
from .disorder import (
    DisorderError,
    ReorderBuffer,
    ReorderFeed,
    bounded_shuffle,
    validate_late_policy,
)
from .event import Event, EventType
from .log import (
    EventLogError,
    EventLogReader,
    EventLogWriter,
    event_from_record,
    event_to_record,
    read_event_log,
    write_event_log,
)
from .schema import AttributeSpec, EventSchema, SchemaRegistry, SchemaValidationError
from .stream import (
    EventStream,
    StreamStatistics,
    interleave_by_timestamp,
    merge_streams,
    timestamp_batches,
)
from .windows import SlidingWindow, WindowCursor, WindowInstance

__all__ = [
    "Event",
    "EventType",
    "DisorderError",
    "ReorderBuffer",
    "ReorderFeed",
    "bounded_shuffle",
    "validate_late_policy",
    "EventLogError",
    "EventLogReader",
    "EventLogWriter",
    "event_from_record",
    "event_to_record",
    "read_event_log",
    "write_event_log",
    "AttributeSpec",
    "EventSchema",
    "SchemaRegistry",
    "SchemaValidationError",
    "EventStream",
    "StreamStatistics",
    "interleave_by_timestamp",
    "merge_streams",
    "timestamp_batches",
    "ColumnLayout",
    "ColumnarBatch",
    "columnar_batches",
    "SlidingWindow",
    "WindowCursor",
    "WindowInstance",
]
