"""Event model substrate: events, schemas, streams, and sliding windows."""

from .columnar import ColumnLayout, ColumnarBatch, columnar_batches
from .event import Event, EventType
from .log import (
    EventLogError,
    EventLogReader,
    EventLogWriter,
    event_from_record,
    event_to_record,
    read_event_log,
    write_event_log,
)
from .schema import AttributeSpec, EventSchema, SchemaRegistry, SchemaValidationError
from .stream import (
    EventStream,
    StreamStatistics,
    interleave_by_timestamp,
    merge_streams,
    timestamp_batches,
)
from .windows import SlidingWindow, WindowCursor, WindowInstance

__all__ = [
    "Event",
    "EventType",
    "EventLogError",
    "EventLogReader",
    "EventLogWriter",
    "event_from_record",
    "event_to_record",
    "read_event_log",
    "write_event_log",
    "AttributeSpec",
    "EventSchema",
    "SchemaRegistry",
    "SchemaValidationError",
    "EventStream",
    "StreamStatistics",
    "interleave_by_timestamp",
    "merge_streams",
    "timestamp_batches",
    "ColumnLayout",
    "ColumnarBatch",
    "columnar_batches",
    "SlidingWindow",
    "WindowCursor",
    "WindowInstance",
]
