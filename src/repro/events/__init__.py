"""Event model substrate: events, schemas, streams, and sliding windows."""

from .event import Event, EventType
from .schema import AttributeSpec, EventSchema, SchemaRegistry, SchemaValidationError
from .stream import (
    EventStream,
    StreamStatistics,
    interleave_by_timestamp,
    merge_streams,
    timestamp_batches,
)
from .windows import SlidingWindow, WindowInstance

__all__ = [
    "Event",
    "EventType",
    "AttributeSpec",
    "EventSchema",
    "SchemaRegistry",
    "SchemaValidationError",
    "EventStream",
    "StreamStatistics",
    "interleave_by_timestamp",
    "merge_streams",
    "timestamp_batches",
    "SlidingWindow",
    "WindowInstance",
]
