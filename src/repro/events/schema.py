"""Event type schemas.

A schema describes the attributes (and their Python domains) carried by the
events of one event type, mirroring the paper's statement that an event type
is "described by a schema that specifies the set of event attributes and the
domains of their values" (Section 2.1).

Schemas are optional at runtime: executors never require them, but stream
sources and dataset generators use them to validate the events they emit and
to document the data sets (Taxi, Linear Road, E-commerce).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from .event import Event, EventType

__all__ = ["AttributeSpec", "EventSchema", "SchemaRegistry", "SchemaValidationError"]


class SchemaValidationError(ValueError):
    """Raised when an event does not conform to its declared schema."""


@dataclass(frozen=True, slots=True)
class AttributeSpec:
    """Declaration of a single event attribute.

    Parameters
    ----------
    name:
        Attribute name as it appears in :attr:`Event.attributes`.
    domain:
        Expected Python type (``int``, ``float``, ``str``...).  ``object``
        accepts anything.
    required:
        Whether events of this type must carry the attribute.
    """

    name: str
    domain: type = object
    required: bool = True

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaValidationError` if ``value`` is outside the domain."""
        if self.domain is object:
            return
        if not isinstance(value, self.domain):
            raise SchemaValidationError(
                f"attribute {self.name!r} expected {self.domain.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )


@dataclass(frozen=True)
class EventSchema:
    """Schema of one event type.

    Examples
    --------
    >>> schema = EventSchema("MainSt", [AttributeSpec("vehicle", int)])
    >>> schema.validate(Event("MainSt", 3, {"vehicle": 9}))
    >>> schema.validate(Event("OakSt", 3, {"vehicle": 9}))
    Traceback (most recent call last):
        ...
    repro.events.schema.SchemaValidationError: event type 'OakSt' does not match schema for 'MainSt'
    """

    event_type: EventType
    attributes: tuple[AttributeSpec, ...] = ()

    def __init__(self, event_type: EventType, attributes: "list[AttributeSpec] | tuple[AttributeSpec, ...]" = ()) -> None:
        object.__setattr__(self, "event_type", event_type)
        object.__setattr__(self, "attributes", tuple(attributes))

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """The declared attribute names, in declaration order."""
        return tuple(spec.name for spec in self.attributes)

    def spec(self, name: str) -> AttributeSpec:
        """The :class:`AttributeSpec` named ``name`` (``KeyError`` if absent)."""
        for candidate in self.attributes:
            if candidate.name == name:
                return candidate
        raise KeyError(f"schema for {self.event_type!r} has no attribute {name!r}")

    def validate(self, event: Event) -> None:
        """Raise :class:`SchemaValidationError` if ``event`` violates this schema."""
        if event.event_type != self.event_type:
            raise SchemaValidationError(
                f"event type {event.event_type!r} does not match schema for {self.event_type!r}"
            )
        for spec in self.attributes:
            if spec.name not in event.attributes:
                if spec.required:
                    raise SchemaValidationError(
                        f"event of type {self.event_type!r} misses required attribute {spec.name!r}"
                    )
                continue
            spec.validate(event.attributes[spec.name])


@dataclass
class SchemaRegistry:
    """A catalogue of :class:`EventSchema` keyed by event type.

    Stream sources register the schemas of the types they produce; the
    registry can then validate whole streams (used by dataset generator
    tests).
    """

    _schemas: dict[EventType, EventSchema] = field(default_factory=dict)

    def register(self, schema: EventSchema) -> None:
        """Add a schema; each event type may be registered at most once."""
        if schema.event_type in self._schemas:
            raise ValueError(f"schema for {schema.event_type!r} already registered")
        self._schemas[schema.event_type] = schema

    def get(self, event_type: EventType) -> EventSchema | None:
        """The schema registered for ``event_type``, or ``None``."""
        return self._schemas.get(event_type)

    def __contains__(self, event_type: EventType) -> bool:
        return event_type in self._schemas

    def __len__(self) -> int:
        return len(self._schemas)

    def event_types(self) -> tuple[EventType, ...]:
        """The registered event types, sorted."""
        return tuple(sorted(self._schemas))

    def validate(self, event: Event, strict: bool = False) -> None:
        """Validate one event against its registered schema.

        Unknown event types are ignored unless ``strict`` is true.
        """
        schema = self._schemas.get(event.event_type)
        if schema is None:
            if strict:
                raise SchemaValidationError(f"no schema registered for {event.event_type!r}")
            return
        schema.validate(event)

    def validate_stream(self, events: "Mapping | list[Event] | tuple[Event, ...]", strict: bool = False) -> int:
        """Validate an iterable of events, returning the number validated."""
        count = 0
        for event in events:
            self.validate(event, strict=strict)
            count += 1
        return count
