"""Setuptools shim.

Kept deliberately minimal so the package installs editable
(``pip install -e .``) in offline environments that lack the ``wheel``
package required by PEP 517 editable builds.  The core library is pure
standard-library Python; the single optional extra enables the vectorised
kernel backend (``repro.executor.kernels``, ``backend="numpy"``):

    pip install repro[numpy]
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    extras_require={"numpy": ["numpy"]},
)
