"""Figure 15: Sharon optimizer versus greedy and exhaustive optimizers (EC workload).

The paper compares three optimizers while varying the number of queries:

* the greedy optimizer (graph construction + GWMIN) is the fastest but may
  return a sub-optimal plan;
* the exhaustive optimizer (construction + expansion + full subset sweep)
  fails beyond ~20 queries, and at 20 queries is orders of magnitude slower
  than the greedy one;
* the Sharon optimizer (construction + expansion + reduction + plan finder)
  is far cheaper than the exhaustive search (it prunes most of the plan
  space) yet still returns an optimal plan, at a latency between the two.

The reproduction sweeps small workload sizes (the exhaustive optimizer is
exponential by design), times each optimizer phase pipeline, and records plan
scores.  Sharing-conflict resolution (graph expansion, Section 7.1) is
disabled for the Sharon and exhaustive optimizers in this sweep so that the
exhaustive sweep is feasible at all — even a handful of queries expands into
dozens of candidate options, and 2^options subsets are out of reach in pure
Python; the expansion phase is measured separately in
``test_ablation_expansion.py``.  Shape assertions: greedy is the cheapest
optimizer; Sharon's plan score matches the exhaustive optimum where the
exhaustive optimizer completes and is never below the greedy score; the
exhaustive optimizer refuses workloads beyond its candidate budget (the
paper's "fails to terminate for more than 20 queries").
"""

from __future__ import annotations

import pytest

from repro.core import ExhaustiveOptimizer, GreedyOptimizer, SharonOptimizer
from repro.events import SlidingWindow
from repro.utils import RateCatalog

from .harness import ec_scenario, record_series

QUERY_COUNTS = [4, 8, 12]
WINDOW = SlidingWindow(size=40, slide=20)


def scenario_for(num_queries: int):
    # Moderate overlap so candidate counts stay within the exhaustive
    # optimizer's reach at the smallest workload sizes (as in the paper,
    # which could only run it up to 20 queries).
    workload, stream = ec_scenario(
        num_queries=num_queries,
        pattern_length=5,
        events_per_second=15.0,
        duration=60,
        num_items=40,
        window=WINDOW,
        seed=151,
    )
    rates = RateCatalog.from_stream(stream, per="time-unit")
    return workload, rates


def build_optimizer(kind: str, rates: RateCatalog):
    if kind == "greedy":
        return GreedyOptimizer(rates)
    if kind == "sharon":
        return SharonOptimizer(rates, expand=False, time_budget_seconds=10.0)
    if kind == "exhaustive":
        return ExhaustiveOptimizer(rates, expand=False, max_candidates=22)
    raise ValueError(kind)


@pytest.mark.parametrize("num_queries", QUERY_COUNTS)
@pytest.mark.parametrize("kind", ["greedy", "sharon", "exhaustive"])
def test_fig15_optimizer_latency(benchmark, kind, num_queries):
    """One bar of Figure 15(a)/(b): one optimizer at one workload size."""
    workload, rates = scenario_for(num_queries)
    optimizer = build_optimizer(kind, rates)

    def run_once():
        try:
            return optimizer.optimize(workload)
        except RuntimeError:
            return None  # the exhaustive optimizer refusing to run (paper: "fails")

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_series(
        benchmark,
        figure="15",
        optimizer=kind,
        num_queries=num_queries,
        completed=result is not None,
        plan_score=None if result is None else round(result.plan.score, 2),
        phase_seconds=None if result is None else {k: round(v, 5) for k, v in result.phase_seconds.items()},
        peak_bytes=None if result is None else result.peak_bytes,
        candidates=None if result is None else result.candidates_after_expansion,
    )


def test_fig15_shape(benchmark):
    """Latency ordering and plan-quality claims of Figure 15 / Section 8.3."""
    rows = []
    for num_queries in QUERY_COUNTS:
        workload, rates = scenario_for(num_queries)
        greedy = build_optimizer("greedy", rates).optimize(workload)
        sharon = build_optimizer("sharon", rates).optimize(workload)
        try:
            exhaustive = build_optimizer("exhaustive", rates).optimize(workload)
        except RuntimeError:
            exhaustive = None
        rows.append((num_queries, greedy, sharon, exhaustive))

    def check():
        summary = {}
        for num_queries, greedy, sharon, exhaustive in rows:
            # The Sharon plan is never worse than the greedy plan.
            assert sharon.plan.score >= greedy.plan.score - 1e-9
            # Greedy is the cheapest optimizer.
            assert greedy.total_seconds <= sharon.total_seconds * 1.5 + 1e-3
            if exhaustive is not None:
                # Optimality: Sharon matches the exhaustive sweep's score
                # (both search the expanded graph).
                assert sharon.plan.score >= exhaustive.plan.score - 1e-9
                # Sharon prunes, so it should not be slower than exhaustive
                # search by more than a small constant factor.
                assert sharon.total_seconds <= exhaustive.total_seconds * 2 + 1e-3
            summary[num_queries] = {
                "greedy_score": round(greedy.plan.score, 1),
                "sharon_score": round(sharon.plan.score, 1),
                "exhaustive_score": None if exhaustive is None else round(exhaustive.plan.score, 1),
                "greedy_seconds": round(greedy.total_seconds, 5),
                "sharon_seconds": round(sharon.total_seconds, 5),
                "exhaustive_seconds": None if exhaustive is None else round(exhaustive.total_seconds, 5),
            }
        return summary

    measured = benchmark.pedantic(check, rounds=1, iterations=1)
    record_series(benchmark, figure="15-shape", summary=measured)


def test_fig15_exhaustive_fails_beyond_budget(benchmark):
    """Beyond ~20 queries the exhaustive optimizer does not terminate (paper)."""
    workload, rates = scenario_for(24)
    optimizer = ExhaustiveOptimizer(rates, expand=False, max_candidates=22)

    def run_guard():
        try:
            optimizer.optimize(workload)
        except RuntimeError:
            return True
        return False

    failed = benchmark.pedantic(run_guard, rounds=1, iterations=1)
    assert failed
    record_series(benchmark, figure="15-failure-point", exhaustive_failed=failed)
