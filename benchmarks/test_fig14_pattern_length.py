"""Figure 14(c)/(g)/(h): online approaches while varying pattern length (EC).

In the paper the speed-up of Sharon over A-Seq grows from 4- to 6-fold when
the pattern length grows from 10 to 30, and Sharon needs 20-fold less memory
at length 30: longer shared patterns replace more per-query work.

The reproduction sweeps the pattern length of the e-commerce scenario,
measures latency, throughput, and sampled peak memory, and asserts the shape:
Sharon is at least as fast as A-Seq at every length, the advantage does not
shrink with longer patterns, and Sharon's memory never exceeds A-Seq's at the
longest patterns.
"""

from __future__ import annotations

import pytest

from repro.events import SlidingWindow

from .harness import (
    ec_scenario,
    optimize,
    record_series,
    require_shape_cpus,
    retry_shape,
    run_best_of,
    run_executor,
)

PATTERN_LENGTHS = [4, 8, 12]
WINDOW = SlidingWindow(size=40, slide=20)


def scenario_for(pattern_length: int):
    # Dense sharing regime (many queries, high rate): this is the setting of
    # Figure 14(c)/(g)/(h), and it keeps the Sharon-vs-A-Seq gap well above
    # measurement noise now that both executors run on the incremental
    # engine.
    return ec_scenario(
        num_queries=32,
        pattern_length=pattern_length,
        events_per_second=30.0,
        duration=100,
        num_items=30,
        window=WINDOW,
        seed=147,
    )


@pytest.mark.parametrize("pattern_length", PATTERN_LENGTHS)
@pytest.mark.parametrize("approach", ["Sharon", "A-Seq"])
def test_fig14_pattern_length(benchmark, approach, pattern_length):
    """One point of Figure 14(c)/(g)/(h) for one online approach."""
    workload, stream = scenario_for(pattern_length)
    plan = optimize(workload, stream)

    def run_once():
        return run_executor(approach, workload, stream, plan, memory_sample_interval=4)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_series(
        benchmark,
        figure="14cgh",
        approach=approach,
        pattern_length=pattern_length,
        latency_ms=result.latency_ms,
        throughput_events_per_second=result.throughput,
        peak_memory_bytes=result.memory_bytes,
    )


def test_fig14_speedup_with_longer_patterns(benchmark):
    """Sharon's advantage persists (and tends to grow) with longer patterns.

    Contention-hardened: each attempt re-measures every point best-of-5 and
    the whole measurement is retried via ``retry_shape``, so a transient CPU
    burst on a loaded CI machine cannot fail the gate while a real
    regression still fails every attempt.
    """

    require_shape_cpus()

    def measure_and_check():
        speedups = []
        memory_ratios = []
        spreads = None
        for pattern_length in PATTERN_LENGTHS:
            workload, stream = scenario_for(pattern_length)
            plan = optimize(workload, stream)
            sharon = run_best_of(
                "Sharon", workload, stream, plan, repeats=5, memory_sample_interval=4
            )
            aseq = run_best_of(
                "A-Seq", workload, stream, plan, repeats=5, memory_sample_interval=4
            )
            speedups.append(aseq.latency_ms / max(sharon.latency_ms, 1e-9))
            memory_ratios.append(aseq.memory_bytes / max(sharon.memory_bytes, 1))
            spreads = (sharon.latency_spread, aseq.latency_spread)
        # Tolerance: Sharon must not be meaningfully slower at any length.
        assert all(s >= 0.95 for s in speedups), speedups
        assert speedups[-1] >= speedups[0] * 0.9, speedups
        assert memory_ratios[-1] >= 1.0, memory_ratios
        return [round(s, 2) for s in speedups], memory_ratios, spreads

    measured, memory_ratios, (sharon_spread, aseq_spread) = benchmark.pedantic(
        lambda: retry_shape(measure_and_check), rounds=1, iterations=1
    )
    record_series(
        benchmark,
        figure="14cgh-shape",
        pattern_lengths=PATTERN_LENGTHS,
        sharon_speedup_over_aseq=measured,
        aseq_over_sharon_memory=[round(r, 2) for r in memory_ratios],
        sharon_latency_spread_ms_at_largest=sharon_spread,
        aseq_latency_spread_ms_at_largest=aseq_spread,
    )
