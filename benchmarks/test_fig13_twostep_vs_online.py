"""Figure 13: two-step versus online approaches (Linear Road data set).

The paper varies the number of events per window and shows that the latency
of the two-step approaches (Flink, SPASS) grows exponentially and their
throughput collapses, to the point where they fail beyond a few thousand
events per window, while the online approaches (A-Seq, Sharon) stay orders of
magnitude faster.

The benchmark reproduces the sweep at a laptop scale: the events-per-window
axis is swept over modest values, each executor is timed per setting, and the
series plus the derived speed-ups are attached to ``extra_info``.  The shape
assertions check the qualitative claims: two-step latency grows super-linearly
with the window content, online approaches beat two-step ones by a widening
margin, and the two-step budget guard trips where the paper reports
non-termination.
"""

from __future__ import annotations

import pytest

from repro.datasets import ChainConfig, chain_stream, chain_workload
from repro.events import SlidingWindow
from repro.executor import FlinkLikeExecutor, TwoStepBudgetExceeded

from .harness import optimize, record_series, run_executor

#: Events per second of the LR stream; with a 30-second window the
#: events-per-window axis is 30x these values.
EVENT_RATES = [4.0, 8.0, 16.0]
APPROACHES = ["Flink-like", "SPASS-like", "A-Seq", "Sharon"]

#: Few segments and few cars so each (window, car) scope holds many events of
#: every segment type — the regime where sequence construction is polynomial
#: in the window content and the two-step approaches collapse (Section 1).
CHAIN = ChainConfig(num_event_types=6, type_prefix="Seg", entity_attribute="car")
WINDOW = SlidingWindow(size=30, slide=15)


def scenario_for(rate: float, duration: int = 60, seed: int = 131):
    workload = chain_workload(
        7,
        3,
        config=CHAIN,
        window=WINDOW,
        seed=seed,
        offset_pool_size=3,
    )
    stream = chain_stream(
        duration=duration,
        events_per_second=rate,
        config=CHAIN,
        num_entities=3,
        advance_probability=0.6,
        seed=seed + 1,
    )
    return workload, stream


@pytest.mark.parametrize("rate", EVENT_RATES)
@pytest.mark.parametrize("approach", APPROACHES)
def test_fig13_latency_throughput(benchmark, approach, rate):
    """One bar of Figure 13(a)/(b): latency and throughput per approach and rate."""
    workload, stream = scenario_for(rate)
    plan = optimize(workload, stream)

    def run_once():
        return run_executor(approach, workload, stream, plan)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_series(
        benchmark,
        figure="13",
        approach=approach,
        events_per_window=rate * WINDOW.size,
        latency_ms=result.latency_ms,
        throughput_events_per_second=result.throughput,
    )


def test_fig13_shape_online_beats_twostep(benchmark):
    """The qualitative claims of Figure 13 hold across the sweep."""
    series: dict[str, list[float]] = {name: [] for name in APPROACHES}
    for rate in EVENT_RATES:
        workload, stream = scenario_for(rate)
        plan = optimize(workload, stream)
        for approach in APPROACHES:
            run = run_executor(approach, workload, stream, plan)
            series[approach].append(run.latency_ms)

    def check_shape():
        # Online approaches are faster than two-step approaches at every rate.
        for index in range(len(EVENT_RATES)):
            assert series["A-Seq"][index] < series["Flink-like"][index]
            assert series["Sharon"][index] < series["Flink-like"][index]
            assert series["Sharon"][index] < series["SPASS-like"][index]
        # The two-step latency grows faster than the online latency as the
        # window content grows (the widening gap of Figure 13(a)).
        flink_growth = series["Flink-like"][-1] / series["Flink-like"][0]
        sharon_growth = series["Sharon"][-1] / max(series["Sharon"][0], 1e-9)
        assert flink_growth > sharon_growth
        return {
            name: [round(value, 2) for value in values] for name, values in series.items()
        }

    measured = benchmark.pedantic(check_shape, rounds=1, iterations=1)
    record_series(benchmark, figure="13-shape", latency_ms_series=measured)


def test_fig13_twostep_fails_on_large_windows(benchmark):
    """Flink/SPASS 'do not terminate' beyond a few thousand events per window.

    The reproduction's analogue is the sequence-construction budget guard:
    with a dense window the two-step executor exceeds it and aborts, while the
    online executors process the same stream without trouble.
    """
    workload, stream = scenario_for(rate=60.0, duration=45, seed=137)

    def run_guard():
        executor = FlinkLikeExecutor(workload, max_sequences_per_scope=100_000)
        try:
            executor.run(stream)
        except TwoStepBudgetExceeded:
            return True
        return False

    failed = benchmark.pedantic(run_guard, rounds=1, iterations=1)
    online = run_executor("Sharon", workload, stream, optimize(workload, stream))
    assert failed, "the two-step executor should exceed its construction budget"
    assert online.throughput > 0
    record_series(
        benchmark,
        figure="13-failure-point",
        twostep_failed=failed,
        online_throughput=online.throughput,
    )
