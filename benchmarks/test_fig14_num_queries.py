"""Figure 14(b)/(f)/(d): online approaches while varying the number of queries (LR).

The paper's headline result: Sharon's speed-up over A-Seq grows from 5-fold
to 18-fold as the workload grows from 20 to 120 queries, and its memory
footprint is up to two orders of magnitude smaller, because the more queries
share a pattern the fewer aggregates have to be maintained.

The reproduction sweeps the workload size of the Linear-Road scenario
(patterns drawn from a small offset pool, so added queries genuinely share),
measures latency, throughput, and sampled peak memory of both online
executors, and asserts the shape: the Sharon/A-Seq latency ratio grows with
the number of queries and Sharon never uses more memory than A-Seq at the
largest workload.
"""

from __future__ import annotations

import pytest

from repro.events import SlidingWindow

from .harness import (
    lr_scenario,
    optimize,
    record_series,
    require_shape_cpus,
    retry_shape,
    run_best_of,
    run_executor,
)

QUERY_COUNTS = [8, 16, 32]
WINDOW = SlidingWindow(size=40, slide=20)


def scenario_for(num_queries: int):
    # A denser stream than the per-point sweep used to need: with the
    # incremental engine both executors are fast enough that the smallest
    # workload's sharing advantage would otherwise sit inside timing noise.
    return lr_scenario(
        num_queries=num_queries,
        pattern_length=6,
        events_per_second=30.0,
        duration=100,
        window=WINDOW,
        seed=143,
    )


@pytest.mark.parametrize("num_queries", QUERY_COUNTS)
@pytest.mark.parametrize("approach", ["Sharon", "A-Seq"])
def test_fig14_num_queries(benchmark, approach, num_queries):
    """One point of Figure 14(b)/(f)/(d) for one online approach."""
    workload, stream = scenario_for(num_queries)
    plan = optimize(workload, stream)

    def run_once():
        return run_executor(approach, workload, stream, plan, memory_sample_interval=4)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_series(
        benchmark,
        figure="14bfd",
        approach=approach,
        num_queries=num_queries,
        latency_ms=result.latency_ms,
        throughput_events_per_second=result.throughput,
        peak_memory_bytes=result.memory_bytes,
    )


def test_fig14_speedup_grows_with_queries(benchmark):
    """The Sharon/A-Seq gap widens as more queries share patterns.

    Contention-hardened: each attempt re-measures every point best-of-7 and
    the whole measurement is retried via ``retry_shape`` — the growth
    comparison divides two sub-millisecond latencies, so a single scheduling
    burst can transiently invert it on a loaded CI machine.
    """

    require_shape_cpus()

    def measure_and_check():
        speedups = []
        memory_ratio_at_largest = None
        spreads = None
        for num_queries in QUERY_COUNTS:
            workload, stream = scenario_for(num_queries)
            plan = optimize(workload, stream)
            sharon = run_best_of(
                "Sharon", workload, stream, plan, repeats=7, memory_sample_interval=4
            )
            aseq = run_best_of(
                "A-Seq", workload, stream, plan, repeats=7, memory_sample_interval=4
            )
            speedups.append(aseq.latency_ms / max(sharon.latency_ms, 1e-9))
            if num_queries == QUERY_COUNTS[-1]:
                memory_ratio_at_largest = aseq.memory_bytes / max(sharon.memory_bytes, 1)
                spreads = (sharon.latency_spread, aseq.latency_spread)
        assert all(s > 1.0 for s in speedups), speedups
        # The gap must actually widen; `retry_shape` (not a tolerance that
        # would also admit a shrinking gap) is what absorbs transient noise.
        assert speedups[-1] > speedups[0], speedups
        assert memory_ratio_at_largest >= 1.0, memory_ratio_at_largest
        return [round(s, 2) for s in speedups], memory_ratio_at_largest, spreads

    measured, memory_ratio_at_largest, (sharon_spread, aseq_spread) = benchmark.pedantic(
        lambda: retry_shape(measure_and_check), rounds=1, iterations=1
    )
    record_series(
        benchmark,
        figure="14bfd-shape",
        num_queries=QUERY_COUNTS,
        sharon_speedup_over_aseq=measured,
        aseq_over_sharon_memory_at_largest=round(memory_ratio_at_largest, 2),
        sharon_latency_spread_ms_at_largest=sharon_spread,
        aseq_latency_spread_ms_at_largest=aseq_spread,
    )
