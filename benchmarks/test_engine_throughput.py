"""Engine throughput: linear stream scaling and the Fig. 13 sharing win.

This is the asymptotics safety net of the shared online engine
(:mod:`repro.executor.engine`): it runs the canonical benchmark of
:mod:`repro.experiments.bench` and asserts

1. **Sub-quadratic stream scaling.**  Scaling the stream 1× → 16× multiplies
   the events per window by 16; a quadratic per-window engine (per-anchor
   state rescanned on every extension and carry read) loses ~16× of its
   events/sec, while the incremental anchored engine must stay within a small
   constant factor.
2. **Sharing beats non-sharing.**  On the dense Fig. 13 scenario the Sharon
   executor must reach at least A-Seq's throughput — the paper's headline
   claim, and the reason the shared engine exists.
3. **Panes beat per-instance fan-out.**  On the small-slide scenario
   (overlap factor 20) the pane-partitioned mode must reach at least 2x the
   per-instance throughput while producing bit-identical results — the
   pane refactor's reason to exist.
4. **Columnar routing beats per-event routing.**  On the routing-bound
   scenario (many event types × groups × selective predicates) the columnar
   micro-batch path must reach at least 2x the scalar per-event throughput
   while producing bit-identical results — the columnar ingestion
   pipeline's reason to exist.
5. **Group sharding beats one process, given cores.**  On the many-group
   scenario the group-sharded engine (4 worker processes) must reach at
   least 1.5x the in-process throughput while producing bit-identical
   results.  Unlike every other gate this one is about *parallelism*, not
   reduced work, so the speedup assertion only runs on machines with at
   least 4 CPUs (e.g. CI runners); the zero-divergence check and the shard
   plan shape are enforced everywhere.  The *tracked* ``BENCH_engine.json``
   is additionally gated on its own recorded ``cpu_count``: a sub-1.5x
   sharded ratio is acceptable in the tracked artifact only when the record
   itself says it was measured on fewer than 4 CPUs.
6. **Replay is deterministic and affordable.**  Recording the dense stream
   to a durable event log and replaying it through ``ReplayRunner`` must
   reach the same final state hash every time, produce results identical to
   the live in-memory run, and keep a usable fraction of live throughput
   (the log adds JSON decode work, not engine work).
7. **Disorder tolerance is affordable and correct.**  Routing the dense
   in-order stream through the bounded-lateness reorder buffer
   (``docs/disorder.md``) must cost at most 1.5x wall clock vs no buffer,
   and a bounded-disorder arrival order must reproduce the sorted run's
   results exactly with zero late events.
8. **The numpy kernel backend pays for itself.**  On the aggregation-bound
   kernel-columns scenario the ``backend="numpy"`` engine must reach at
   least 2x the pure-Python throughput while producing bit-identical
   results.  Like the sharded gate this one is environment-guarded: the
   speedup assertion only runs where numpy is importable (the zero
   divergence invariant is enforced inside ``run_kernel_benchmark`` itself,
   which refuses to produce a record when the backends disagree).

``python -m repro bench`` / ``make bench`` runs the same scenarios and
writes the machine-readable ``BENCH_engine.json`` performance trajectory.
"""

from __future__ import annotations

import os

import pytest

from pathlib import Path

from repro.executor.kernels import numpy_available
from repro.experiments import (
    SCALE_FACTORS,
    SHARD_BENCH_SHARDS,
    run_compaction_benchmark,
    run_disorder_benchmark,
    run_engine_benchmark,
    run_kernel_benchmark,
    run_pane_benchmark,
    run_replay_benchmark,
    run_routing_benchmark,
    run_sharding_benchmark,
    write_bench_json,
)

#: Maximum tolerated events/sec degradation from 1× to 16× stream scale.
#: A quadratic engine degrades by ~the scale factor (16); the linear engine
#: typically stays within ~1.5×.  4 leaves headroom for CI jitter while still
#: failing any reintroduced per-anchor scan.
MAX_SLOWDOWN_AT_16X = 4.0

#: Sharon may not fall below this fraction of A-Seq on the dense scenario.
MIN_SHARING_ADVANTAGE = 1.0

#: Compaction-on throughput may not fall below this fraction of compaction-off
#: on the long-window scenario (it is typically well *above* 1: fewer cohorts
#: mean less column work per event; 0.9 leaves headroom for CI jitter).
MIN_COMPACTION_THROUGHPUT_RATIO = 0.9

#: Pane partitioning must reach at least this multiple of the panes-off
#: throughput on the small-slide scenario (overlap factor 20; the pane engine
#: typically lands ~6-9x, so 2x leaves ample headroom for CI jitter while
#: still failing any reintroduced per-instance fan-out).
MIN_PANE_SPEEDUP = 2.0

#: Columnar micro-batch ingestion must reach at least this multiple of the
#: scalar per-event throughput on the routing-bound scenario (many event
#: types × groups × selective predicates; the columnar path typically lands
#: ~4-6x there, so 2x leaves ample headroom for CI jitter while still
#: failing any reintroduced per-event routing work).
MIN_COLUMNAR_SPEEDUP = 2.0

#: Group-sharded fan-out must reach at least this multiple of the in-process
#: throughput on the many-group scenario — when the machine has the cores to
#: deliver it (4 shards on >= 4 CPUs typically land ~2.5-3x; 1.5x leaves
#: headroom for slicing/IPC overhead and CI jitter).
MIN_SHARD_SPEEDUP = 1.5

#: The sharded speedup is pure parallelism, so the assertion is meaningless
#: below this CPU count (a 1-core machine *cannot* run shards concurrently;
#: there the gate still enforces zero divergence and the shard-plan shape).
MIN_SHARD_CPUS = SHARD_BENCH_SHARDS

#: Replaying the durable event log must keep at least this fraction of the
#: live in-memory throughput on the dense scenario.  Replay adds JSON
#: decoding per event but no engine work, so it typically lands ~0.6-0.9x;
#: 0.2 leaves ample headroom while still failing a replay path that
#: re-processes events or copies state per batch.
MIN_REPLAY_THROUGHPUT_RATIO = 0.2

#: Routing an already-sorted stream through the reorder buffer may cost at
#: most this factor of the no-buffer wall clock on the dense scenario (the
#: buffer adds a dict/heap hop per event; it typically lands ~1.05-1.15x,
#: so 1.5x leaves headroom for CI jitter while still failing a buffer that
#: re-sorts or copies batches per event).
MAX_REORDER_OVERHEAD = 1.5

#: The numpy kernel backend must reach at least this multiple of the
#: pure-Python throughput on the aggregation-bound kernel-columns scenario
#: (long shared columns, rare completions; the vectorised column commits
#: typically land ~2.5-3x, so 2x leaves headroom for CI jitter while still
#: failing a backend that fell back to per-cell Python work).
MIN_KERNEL_SPEEDUP = 2.0

#: The tracked performance-trajectory artifact at the repo root.
TRACKED_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


@pytest.fixture(scope="module")
def bench_records():
    # The tracked BENCH_engine.json artifact is refreshed explicitly via
    # `python -m repro bench` / `make bench`; the test run itself stays
    # side-effect free (test_bench_json_schema writes to tmp_path).
    return run_engine_benchmark()


def _events_per_sec(records, scenario: str, executor: str) -> float:
    for record in records:
        if record.scenario == scenario and record.executor == executor:
            return record.events_per_sec
    raise AssertionError(f"missing benchmark record for {scenario}/{executor}")


def test_scale_factors_cover_1x_to_16x():
    assert SCALE_FACTORS[0] == 1 and SCALE_FACTORS[-1] == 16


@pytest.mark.parametrize("executor", ["Sharon", "A-Seq"])
def test_throughput_scales_subquadratically(bench_records, executor):
    base = _events_per_sec(bench_records, "scale-1x", executor)
    scaled = _events_per_sec(bench_records, "scale-16x", executor)
    slowdown = base / scaled if scaled > 0 else float("inf")
    assert slowdown <= MAX_SLOWDOWN_AT_16X, (
        f"{executor} events/sec degraded {slowdown:.1f}x from 1x to 16x stream scale "
        f"({base:,.0f} -> {scaled:,.0f} ev/s): the engine is super-linear in the "
        "events per window again"
    )


def test_sharon_beats_aseq_on_dense_scenario(bench_records):
    sharon = _events_per_sec(bench_records, "fig13-dense", "Sharon")
    aseq = _events_per_sec(bench_records, "fig13-dense", "A-Seq")
    assert sharon >= aseq * MIN_SHARING_ADVANTAGE, (
        f"Sharon ({sharon:,.0f} ev/s) slower than A-Seq ({aseq:,.0f} ev/s) on the "
        "dense Fig. 13 scenario - shared online aggregation lost its advantage"
    )


@pytest.fixture(scope="module")
def compaction_record():
    return run_compaction_benchmark()


def test_compaction_reduces_cohorts(compaction_record):
    """The long-window scenario must actually merge cohorts (the whole point)."""
    assert compaction_record.cohorts_merged > 0
    assert compaction_record.cohorts_remaining < compaction_record.cohorts_created
    # Shared-prefix carries are all unit: compaction should collapse nearly
    # everything, not shave a few cohorts.
    assert compaction_record.cohorts_merged >= compaction_record.cohorts_created // 2


def test_compaction_does_not_regress_throughput(compaction_record):
    on = compaction_record.compaction_on_events_per_sec
    off = compaction_record.compaction_off_events_per_sec
    assert on >= off * MIN_COMPACTION_THROUGHPUT_RATIO, (
        f"compaction-on throughput ({on:,.0f} ev/s) fell below "
        f"{MIN_COMPACTION_THROUGHPUT_RATIO:.0%} of compaction-off ({off:,.0f} ev/s) "
        "on the long-window scenario - compaction is costing more than it saves"
    )


@pytest.fixture(scope="module")
def pane_record():
    return run_pane_benchmark()


def test_pane_sharing_speedup(pane_record):
    """Panes on must beat panes off by ≥2x on the small-slide scenario.

    ``run_pane_benchmark`` already refuses to produce a record when the two
    modes disagree on any result, so a passing gate certifies both the
    speedup and zero divergence.
    """
    on = pane_record.panes_on_events_per_sec
    off = pane_record.panes_off_events_per_sec
    assert on >= off * MIN_PANE_SPEEDUP, (
        f"pane-partitioned throughput ({on:,.0f} ev/s) below "
        f"{MIN_PANE_SPEEDUP:.0f}x of per-instance throughput ({off:,.0f} ev/s) "
        "on the small-slide scenario - the pane layer lost its advantage"
    )


def test_pane_sharing_exercises_panes(pane_record):
    """The record must prove pane mode actually ran (counters non-trivial)."""
    assert pane_record.panes_created > 0
    assert pane_record.events_per_pane > 0
    # Every pane × group scope is folded once into each covering window it
    # overlaps, so fold counts must dominate scope counts under overlap
    # (panes_per_window = 20 here; groups dilute the per-scope fold count,
    # but a silent per-instance fallback would record zero folds).
    assert pane_record.pane_merges >= pane_record.panes_created


@pytest.fixture(scope="module")
def routing_record():
    return run_routing_benchmark()


def test_columnar_routing_speedup(routing_record):
    """Columnar on must beat columnar off by ≥2x on the routing-bound scenario.

    ``run_routing_benchmark`` already refuses to produce a record when the
    two modes disagree on any result, so a passing gate certifies both the
    speedup and zero divergence.
    """
    on = routing_record.columnar_on_events_per_sec
    off = routing_record.columnar_off_events_per_sec
    assert on >= off * MIN_COLUMNAR_SPEEDUP, (
        f"columnar-routing throughput ({on:,.0f} ev/s) below "
        f"{MIN_COLUMNAR_SPEEDUP:.0f}x of the scalar per-event throughput "
        f"({off:,.0f} ev/s) on the routing-bound scenario - the columnar "
        "micro-batch path lost its advantage"
    )


def test_columnar_routing_is_routing_bound(routing_record):
    """The record must prove the scenario shape and that columnar mode ran."""
    assert routing_record.columnar_batches > 0
    # Routing-bound by construction: almost every event is dropped by type
    # dispatch or the selective predicate before reaching any scope.
    assert routing_record.relevant_fraction < 0.05
    assert routing_record.event_types > routing_record.pattern_event_types * 4
    assert routing_record.groups > 1


@pytest.fixture(scope="module")
def sharding_record():
    # run_sharding_benchmark raises on any sharded-vs-unsharded result
    # divergence, so every test below certifies zero divergence implicitly.
    return run_sharding_benchmark()


def test_sharded_groups_speedup(sharding_record):
    """4-shard fan-out must beat the in-process engine by ≥1.5x, given cores.

    The sharded win is wall-clock parallelism across real CPUs — on fewer
    than ``MIN_SHARD_CPUS`` cores the workers time-slice one core and the
    ratio necessarily lands near or below 1x, so there the assertion is
    skipped (the record is still produced, still divergence-checked, and
    still schema-gated below).
    """
    cpus = os.cpu_count() or 1
    if cpus < MIN_SHARD_CPUS:
        pytest.skip(
            f"sharded speedup needs >= {MIN_SHARD_CPUS} CPUs to be "
            f"observable; this machine has {cpus}"
        )
    sharded = sharding_record.sharded_events_per_sec
    unsharded = sharding_record.unsharded_events_per_sec
    assert sharded >= unsharded * MIN_SHARD_SPEEDUP, (
        f"group-sharded throughput ({sharded:,.0f} ev/s at "
        f"{sharding_record.shards} shards) below {MIN_SHARD_SPEEDUP}x of the "
        f"in-process throughput ({unsharded:,.0f} ev/s) on the many-group "
        "scenario - the sharding layer lost its advantage"
    )


def test_sharded_groups_plan_shape(sharding_record):
    """The record must prove real fan-out over a balanced many-group plan."""
    assert sharding_record.shards == SHARD_BENCH_SHARDS
    assert len(sharding_record.groups_per_shard) == SHARD_BENCH_SHARDS
    # Every shard must carry real work: an empty shard means the scenario is
    # not the many-group regime the section claims to measure.
    assert all(groups > 0 for groups in sharding_record.groups_per_shard)
    assert sharding_record.groups >= SHARD_BENCH_SHARDS * 4
    # The greedy planner must keep the heaviest shard near the ideal load.
    assert 1.0 <= sharding_record.shard_skew <= 1.25
    assert sharding_record.cpu_count >= 1


def test_tracked_sharded_record_is_cpu_contextualized():
    """The tracked artifact may only record a sub-gate sharded ratio on a
    machine that could not have done better.

    A ``sharded_groups`` record whose speedup is below ``MIN_SHARD_SPEEDUP``
    is legitimate *only* when its own ``cpu_count`` field shows the
    measurement was taken on fewer than ``MIN_SHARD_CPUS`` cores — a 1-CPU
    box time-slices the 4 workers and typically lands ~0.8x, which is the
    slicing/IPC overhead, not a sharding regression (``docs/benchmarks.md``
    explains the field).  On a machine with real cores, a slow tracked
    record means the artifact must be re-recorded or the regression fixed.
    """
    if not TRACKED_BENCH_PATH.is_file():
        pytest.skip(f"no tracked benchmark artifact at {TRACKED_BENCH_PATH}")
    import json

    payload = json.loads(TRACKED_BENCH_PATH.read_text(encoding="utf-8"))
    section = payload.get("sharded_groups")
    if section is None:
        pytest.skip("tracked artifact predates the sharded_groups section")
    assert "cpu_count" in section, (
        "the tracked sharded_groups record must carry the cpu_count it was "
        "measured on; re-record with `python -m repro bench`"
    )
    speedup = section["sharded_events_per_sec"] / max(section["unsharded_events_per_sec"], 1e-9)
    if section["cpu_count"] >= MIN_SHARD_CPUS:
        assert speedup >= MIN_SHARD_SPEEDUP, (
            f"tracked sharded_groups record shows {speedup:.2f}x on "
            f"{section['cpu_count']} CPUs - re-record the artifact or fix "
            "the sharding regression"
        )


@pytest.fixture(scope="module")
def replay_record():
    return run_replay_benchmark()


def test_replay_reaches_identical_state(replay_record):
    """Every replay of the same log must reach the same final state hash."""
    assert replay_record.replays >= 2
    assert replay_record.replays_identical, (
        f"{replay_record.replays} replays of the same event log reached "
        "different final state hashes - replay determinism is broken "
        "(use `repro replay --trace` on two runs and first_divergence to "
        "localise the offending batch)"
    )
    assert len(replay_record.state_hash) == 64


def test_replay_matches_live_run(replay_record):
    """Replaying the log must produce the live in-memory run's results."""
    assert replay_record.matches_live, (
        "replayed results diverge from the live run on the dense scenario - "
        "the event-log codec or the replay ingestion path drops or reorders "
        "events"
    )


def test_replay_throughput(replay_record):
    """Replay must keep a usable fraction of live throughput."""
    replay = replay_record.replay_events_per_sec
    live = replay_record.live_events_per_sec
    assert replay >= live * MIN_REPLAY_THROUGHPUT_RATIO, (
        f"replay throughput ({replay:,.0f} ev/s) below "
        f"{MIN_REPLAY_THROUGHPUT_RATIO:.0%} of live ({live:,.0f} ev/s) - the "
        "replay path is doing more than decode-and-feed"
    )
    assert replay_record.log_bytes > 0
    assert replay_record.record_events_per_sec > 0


@pytest.fixture(scope="module")
def disorder_record():
    # run_disorder_benchmark raises when buffering an in-order stream changes
    # any result, so every test below certifies that invariant implicitly.
    return run_disorder_benchmark()


def test_reorder_buffer_overhead_is_bounded(disorder_record):
    """The buffer may cost at most 1.5x on an already-sorted stream."""
    assert disorder_record.reorder_overhead <= MAX_REORDER_OVERHEAD, (
        f"reorder buffer costs {disorder_record.reorder_overhead:.2f}x wall "
        f"clock on the in-order dense scenario (limit "
        f"{MAX_REORDER_OVERHEAD}x) - the watermark path is doing more than "
        "a dict/heap hop per event"
    )
    assert disorder_record.inorder_events_per_sec > 0
    assert disorder_record.reordered_shuffled_events_per_sec > 0


def test_disordered_arrivals_reproduce_sorted_results(disorder_record):
    """A ≤L arrival order must match the sorted run with zero late events."""
    assert disorder_record.shuffled_matches_sorted, (
        "the bounded-disorder run's results diverge from the sorted run on "
        "the dense scenario - the reorder buffer is releasing batches in the "
        "wrong order or dropping in-bound events"
    )
    assert disorder_record.events_late == 0
    assert disorder_record.events_dropped == 0
    assert disorder_record.max_lateness > 0


@pytest.fixture(scope="module")
def kernel_record():
    # run_kernel_benchmark raises when the numpy backend changes any result,
    # so every test below certifies zero divergence implicitly.
    return run_kernel_benchmark()


def test_kernel_numerics_speedup(kernel_record):
    """The numpy backend must beat pure Python by ≥2x, where numpy exists.

    Without numpy the record still exists (python throughput, availability
    flag) but there is no speedup to assert — the guard mirrors the CPU
    guard of the sharded gate.
    """
    if not numpy_available():
        pytest.skip("numpy is not importable; the kernel speedup is unmeasurable")
    python = kernel_record.python_events_per_sec
    vectorised = kernel_record.numpy_events_per_sec
    assert vectorised >= python * MIN_KERNEL_SPEEDUP, (
        f"numpy kernel throughput ({vectorised:,.0f} ev/s) below "
        f"{MIN_KERNEL_SPEEDUP:.0f}x of the pure-Python throughput "
        f"({python:,.0f} ev/s) on the kernel-columns scenario - the "
        "vectorised column commits lost their advantage"
    )


def test_kernel_numerics_scenario_shape(kernel_record):
    """The record must prove the aggregation-bound regime actually ran."""
    assert kernel_record.scenario == "kernel-columns"
    # The parity claim is only measurable when both backends ran.
    assert kernel_record.results_match == numpy_available()
    # Compaction is off and completions are rare, so cohorts accumulate into
    # long columns — the regime the vectorised commits are built for.
    assert kernel_record.cohorts_created >= 1000
    assert kernel_record.shared_pattern_length >= 8
    assert kernel_record.numpy_available == numpy_available()


def test_tracked_kernel_record_is_availability_contextualized():
    """The tracked artifact may only record a sub-gate kernel speedup on a
    machine that could not have measured one.

    A ``kernel_numerics`` record without a speedup is legitimate *only* when
    its own ``numpy_available`` field shows the measurement ran without
    numpy.  A tracked record measured *with* numpy must meet the gate, or
    the artifact must be re-recorded / the regression fixed.
    """
    if not TRACKED_BENCH_PATH.is_file():
        pytest.skip(f"no tracked benchmark artifact at {TRACKED_BENCH_PATH}")
    import json

    payload = json.loads(TRACKED_BENCH_PATH.read_text(encoding="utf-8"))
    section = payload.get("kernel_numerics")
    if section is None:
        pytest.skip("tracked artifact predates the kernel_numerics section")
    if section["numpy_available"]:
        assert section["results_match"] is True
        assert section["speedup"] >= MIN_KERNEL_SPEEDUP, (
            f"tracked kernel_numerics record shows {section['speedup']:.2f}x "
            "with numpy available - re-record the artifact or fix the kernel "
            "regression"
        )
    else:
        assert section["numpy_events_per_sec"] == 0.0


def test_records_expose_sample_spread(bench_records):
    """Best-of-N records must carry the median so noise stays visible."""
    for record in bench_records:
        assert record.samples >= 2
        assert record.elapsed_median_seconds >= record.elapsed_seconds


def test_bench_json_schema(
    bench_records,
    compaction_record,
    pane_record,
    routing_record,
    sharding_record,
    replay_record,
    disorder_record,
    kernel_record,
    tmp_path,
):
    import json

    target = write_bench_json(
        bench_records,
        tmp_path / "BENCH_engine.json",
        compaction=compaction_record,
        pane_sharing=pane_record,
        columnar_routing=routing_record,
        sharded_groups=sharding_record,
        replay=replay_record,
        disorder=disorder_record,
        kernel_numerics=kernel_record,
    )
    payload = json.loads(target.read_text(encoding="utf-8"))
    assert payload["benchmark"] == "engine-throughput"
    assert len(payload["results"]) == len(bench_records)
    for row in payload["results"]:
        assert {
            "scenario",
            "executor",
            "events_per_sec",
            "peak_mb",
            "elapsed_median_seconds",
            "samples",
        } <= set(row)
    section = payload["cohort_compaction"]
    assert section["scenario"] == "long-window"
    assert section["cohorts_merged"] > 0
    assert {
        "cohorts_created",
        "cohorts_remaining",
        "compaction_on_events_per_sec",
        "compaction_off_events_per_sec",
    } <= set(section)
    pane_section = payload["pane_sharing"]
    assert pane_section["scenario"] == "small-slide"
    assert pane_section["panes_created"] > 0
    assert {
        "window_size",
        "window_slide",
        "pane_width",
        "panes_per_window",
        "pane_merges",
        "events_per_pane",
        "panes_on_events_per_sec",
        "panes_off_events_per_sec",
    } <= set(pane_section)
    routing_section = payload["columnar_routing"]
    assert routing_section["scenario"] == "columnar-routing"
    assert routing_section["columnar_batches"] > 0
    assert {
        "event_types",
        "pattern_event_types",
        "groups",
        "relevant_fraction",
        "columnar_on_events_per_sec",
        "columnar_off_events_per_sec",
        "samples",
    } <= set(routing_section)
    sharded_section = payload["sharded_groups"]
    assert sharded_section["scenario"] == "many-group"
    assert sharded_section["shards"] == SHARD_BENCH_SHARDS
    assert len(sharded_section["groups_per_shard"]) == SHARD_BENCH_SHARDS
    assert {
        "events",
        "groups",
        "strategy",
        "cpu_count",
        "shard_skew",
        "sharded_events_per_sec",
        "unsharded_events_per_sec",
        "samples",
    } <= set(sharded_section)
    replay_section = payload["replay"]
    assert replay_section["scenario"] == "dense-sharing-replay"
    assert replay_section["replays_identical"] is True
    assert replay_section["matches_live"] is True
    assert {
        "events",
        "log_bytes",
        "record_events_per_sec",
        "replay_events_per_sec",
        "live_events_per_sec",
        "state_hash",
        "replays",
        "samples",
    } <= set(replay_section)
    disorder_section = payload["disorder"]
    assert disorder_section["scenario"] == "dense-sharing-disorder"
    assert disorder_section["shuffled_matches_sorted"] is True
    assert disorder_section["events_late"] == 0
    assert {
        "events",
        "max_lateness",
        "inorder_events_per_sec",
        "reordered_inorder_events_per_sec",
        "reordered_shuffled_events_per_sec",
        "reorder_overhead",
        "events_dropped",
        "samples",
    } <= set(disorder_section)
    kernel_section = payload["kernel_numerics"]
    assert kernel_section["scenario"] == "kernel-columns"
    assert kernel_section["results_match"] == numpy_available()
    assert {
        "events",
        "queries",
        "shared_pattern_length",
        "cohorts_created",
        "numpy_available",
        "python_events_per_sec",
        "numpy_events_per_sec",
        "speedup",
        "samples",
    } <= set(kernel_section)
