"""Ablation: sharing-conflict resolution (graph expansion, Section 7.1).

The expansion rewrites each conflicted candidate into options over query
subsets, opening sharing opportunities the original graph excludes.  This
ablation measures, on the paper's running example and on a generated
workload:

* how many vertices the expansion adds;
* the optimal plan score with and without expansion (expansion can only
  improve it, never hurt);
* the extra optimization latency the expansion costs.
"""

from __future__ import annotations

import time

import pytest

from repro.core import SharonOptimizer
from repro.datasets import traffic_workload
from repro.utils import RateCatalog

from .harness import ec_scenario, paper_benefit, record_series


def test_ablation_expansion_on_running_example(benchmark):
    """Expansion on the Figure 4 graph: option counts and score improvement."""
    workload = traffic_workload()
    rates = RateCatalog(default_rate=1.0)

    def run_once():
        plain = SharonOptimizer(rates, expand=False, benefit_override=paper_benefit).optimize(
            workload
        )
        expanded = SharonOptimizer(rates, expand=True, benefit_override=paper_benefit).optimize(
            workload
        )
        assert expanded.plan.score >= plain.plan.score - 1e-9
        return {
            "candidates": plain.candidates_total,
            "candidates_after_expansion": expanded.candidates_after_expansion,
            "score_without_expansion": round(plain.plan.score, 2),
            "score_with_expansion": round(expanded.plan.score, 2),
            "latency_without_expansion_s": round(plain.total_seconds, 5),
            "latency_with_expansion_s": round(expanded.total_seconds, 5),
        }

    summary = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert summary["candidates_after_expansion"] >= summary["candidates"]
    record_series(benchmark, figure="ablation-expansion-example", summary=summary)


def test_ablation_expansion_on_generated_workload(benchmark):
    """Expansion cost/benefit on a generated e-commerce workload."""
    workload, stream = ec_scenario(
        num_queries=8, pattern_length=5, events_per_second=15.0, duration=60, seed=181
    )
    rates = RateCatalog.from_stream(stream, per="time-unit")

    def run_once():
        started = time.perf_counter()
        plain = SharonOptimizer(rates, expand=False, time_budget_seconds=10.0).optimize(workload)
        plain_seconds = time.perf_counter() - started

        started = time.perf_counter()
        expanded = SharonOptimizer(rates, expand=True, time_budget_seconds=10.0).optimize(
            workload
        )
        expanded_seconds = time.perf_counter() - started

        assert expanded.plan.score >= plain.plan.score - 1e-9
        return {
            "score_without_expansion": round(plain.plan.score, 2),
            "score_with_expansion": round(expanded.plan.score, 2),
            "latency_without_expansion_s": round(plain_seconds, 4),
            "latency_with_expansion_s": round(expanded_seconds, 4),
            "candidates_without_expansion": plain.candidates_after_expansion,
            "candidates_with_expansion": expanded.candidates_after_expansion,
        }

    summary = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_series(benchmark, figure="ablation-expansion-generated", summary=summary)
