"""Shared helpers for the figure-reproduction benchmarks.

The heavy lifting — scenario construction, executor invocation, metric
reduction — lives in :mod:`repro.experiments` so that the same sweeps can be
reproduced outside pytest (``examples/reproduce_figures.py`` and
``python -m repro``).  This module re-exports those helpers for the benchmark
modules and adds the pytest-benchmark specific plumbing.

All benchmarks attach their measured series to ``benchmark.extra_info`` so
that ``pytest benchmarks/ --benchmark-only`` output doubles as the data
behind the reproduced figures recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import (
    EXECUTOR_NAMES,
    ExecutorRun,
    dense_scenario,
    ec_scenario,
    greedy_plan,
    lr_scenario,
    optimize,
    run_executor,
    tx_scenario,
)

__all__ = [
    "ExecutorRun",
    "EXECUTOR_NAMES",
    "PAPER_BENEFITS",
    "paper_benefit",
    "dense_scenario",
    "lr_scenario",
    "tx_scenario",
    "ec_scenario",
    "optimize",
    "greedy_plan",
    "run_executor",
    "run_best_of",
    "retry_shape",
    "record_series",
    "require_shape_cpus",
]

#: Minimum CPU count for the figure *shape* benchmarks: comparing two
#: executors' sub-millisecond latencies needs at least one core free of the
#: measuring process itself, or scheduler time-slicing dominates the ratio.
MIN_SHAPE_CPUS = 2

#: Default attempts of :func:`retry_shape` (re-measurements of a flaky shape
#: assertion before the failure is considered real).
SHAPE_RETRY_ATTEMPTS = 3


#: Vertex weights of the Sharon graph in Figure 4 (the paper's running
#: example), keyed by the shared pattern's event types.  Used by the ablation
#: benchmarks to reproduce the numbers of Examples 7-12 exactly.
PAPER_BENEFITS: dict[tuple[str, ...], float] = {
    ("OakSt", "MainSt"): 25.0,             # p1
    ("ParkAve", "OakSt"): 9.0,             # p2
    ("ParkAve", "OakSt", "MainSt"): 12.0,  # p3
    ("MainSt", "WestSt"): 15.0,            # p4
    ("OakSt", "MainSt", "WestSt"): 20.0,   # p5
    ("MainSt", "StateSt"): 8.0,            # p6
    ("ElmSt", "ParkAve"): 18.0,            # p7
}


def paper_benefit(candidate) -> float:
    """Benefit override reproducing the vertex weights of Figure 4."""
    return PAPER_BENEFITS.get(candidate.pattern.event_types, 0.0)


def record_series(benchmark, **series) -> None:
    """Attach a reproduced figure series to the pytest-benchmark record."""
    for key, value in series.items():
        benchmark.extra_info[key] = value


def run_best_of(
    name: str,
    workload,
    stream,
    plan,
    repeats: int = 3,
    **kwargs,
) -> ExecutorRun:
    """Run one executor ``repeats`` times and keep the lowest-latency run.

    The figure *shape* assertions compare sub-millisecond latencies of two
    executors; taking the best of a few runs removes scheduler noise without
    changing what is asserted (minimum runtime is the standard robust
    estimator for micro-benchmarks).

    The returned run carries *all* latency samples in ``latency_samples_ms``
    (and hence ``latency_spread``), so callers can record the min/median of
    the sample set next to the best run — the figure benchmarks attach it to
    their ``record_series`` output (``BENCH_engine.json``'s own spread
    columns come from ``repro.experiments.bench``).
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    best: ExecutorRun | None = None
    samples: list[float] = []
    for _ in range(repeats):
        run = run_executor(name, workload, stream, plan, **kwargs)
        samples.append(run.latency_ms)
        if best is None or run.latency_ms < best.latency_ms:
            best = run
    best.latency_samples_ms = tuple(samples)
    return best


def require_shape_cpus(minimum: int = MIN_SHAPE_CPUS) -> None:
    """Skip a latency-ratio *shape* assertion on CPU-starved machines.

    The figure shape benchmarks divide two sub-millisecond executor
    latencies.  On a machine with fewer than ``minimum`` CPUs every
    measurement time-slices against the harness itself, so the ratio
    reflects scheduler contention rather than engine work and even
    ``retry_shape`` cannot de-flake it.  Correctness is unaffected — the
    oracle differential and zero-divergence gates run unconditionally —
    so on such boxes the shape comparison is skipped rather than asserted
    on noise.
    """
    cpus = os.cpu_count() or 1
    if cpus < minimum:
        pytest.skip(
            f"figure shape comparison needs >= {minimum} CPUs for a stable "
            f"latency ratio; this machine has {cpus}"
        )


def retry_shape(measure_and_check, attempts: int = SHAPE_RETRY_ATTEMPTS):
    """Re-run a contention-sensitive shape assertion up to ``attempts`` times.

    The figure *shape* benchmarks compare sub-millisecond latencies of two
    executors; even with best-of-N sampling, a single unlucky scheduling
    burst on a loaded CI machine can invert a ratio.  ``measure_and_check``
    must perform the *whole* measurement and its assertions (fresh samples
    every attempt — retrying a cached measurement would be a no-op) and
    return the payload to record.  A real regression fails every attempt and
    the final ``AssertionError`` propagates unchanged; transient contention
    gets ``attempts - 1`` chances to clear.
    """
    for attempt in range(attempts):
        try:
            return measure_and_check()
        except AssertionError:
            if attempt == attempts - 1:
                raise
    raise AssertionError("unreachable")  # pragma: no cover
