"""Ablation: the effect of Sharon's pruning principles (Sections 3.4, 5, 6).

The paper motivates three pruning principles — non-beneficial candidates,
conflict-ridden candidates, conflict-free candidates (graph reduction), and
invalid-branch pruning inside the plan finder — and reports that on average
36 % of the candidates are pruned, which removes ~99 % of the plan-finder
search space.  This ablation quantifies each principle on the paper's running
example and on generated workloads:

* how many candidates each pruning step removes;
* how many plans the level-wise finder considers with and without the graph
  reduction;
* that the optimal plan's score is identical in all configurations
  (pruning never sacrifices optimality).
"""

from __future__ import annotations

import pytest

from repro.core import (
    PlanSearchStatistics,
    build_candidates,
    build_sharon_graph,
    find_optimal_plan,
    reduce_sharon_graph,
    reduction_search_space_savings,
)
from repro.datasets import traffic_workload
from repro.utils import RateCatalog

from .harness import ec_scenario, paper_benefit, record_series


def _paper_graph():
    return build_sharon_graph(
        traffic_workload(), RateCatalog(default_rate=1.0), benefit_override=paper_benefit
    )


def test_ablation_reduction_on_running_example(benchmark):
    """Candidate and search-space reduction on the Figure 4 graph."""

    def run_once():
        graph = _paper_graph()
        with_stats = PlanSearchStatistics()
        without_stats = PlanSearchStatistics()

        reduction = reduce_sharon_graph(graph)
        reduced_plan = find_optimal_plan(
            reduction.reduced_graph, reduction.conflict_free, with_stats
        )
        unreduced_plan = find_optimal_plan(graph, statistics=without_stats)

        assert reduced_plan.score == pytest.approx(unreduced_plan.score)
        return {
            "candidates": len(graph),
            "candidates_after_reduction": len(reduction.reduced_graph),
            "conflict_free": len(reduction.conflict_free),
            "conflict_ridden": len(reduction.conflict_ridden),
            "space_savings": round(
                reduction_search_space_savings(len(graph), len(reduction.reduced_graph)), 4
            ),
            "plans_considered_with_reduction": with_stats.plans_considered,
            "plans_considered_without_reduction": without_stats.plans_considered,
            "optimal_score": reduced_plan.score,
        }

    summary = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert summary["plans_considered_with_reduction"] <= summary[
        "plans_considered_without_reduction"
    ]
    record_series(benchmark, figure="ablation-pruning-example", summary=summary)


def test_ablation_non_beneficial_pruning(benchmark):
    """Non-beneficial pruning (Section 3.4) on a generated EC workload."""
    workload, stream = ec_scenario(
        num_queries=12, pattern_length=5, events_per_second=15.0, duration=60, seed=171
    )
    rates = RateCatalog.from_stream(stream, per="time-unit")

    def run_once():
        all_candidates = build_candidates(workload)
        graph = build_sharon_graph(workload, rates)
        return {
            "sharable_patterns": len(all_candidates),
            "beneficial_candidates": len(graph),
            "pruned_as_non_beneficial": len(all_candidates) - len(graph),
        }

    summary = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert summary["beneficial_candidates"] <= summary["sharable_patterns"]
    record_series(benchmark, figure="ablation-non-beneficial", summary=summary)


def test_ablation_invalid_branch_pruning(benchmark):
    """The level-wise finder touches only valid plans (invalid-branch pruning).

    Compared against the 2^n subsets an exhaustive sweep would inspect, the
    valid space explored by Algorithm 4 is a small fraction (Example 10 finds
    7.87 % valid plans for the running example).
    """

    def run_once():
        graph = _paper_graph()
        stats = PlanSearchStatistics()
        find_optimal_plan(graph, statistics=stats)
        total_plans = 2 ** len(graph)
        return {
            "candidates": len(graph),
            "plans_in_full_space": total_plans,
            "valid_plans_considered": stats.plans_considered,
            "fraction_of_space_visited": round(stats.plans_considered / total_plans, 4),
        }

    summary = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert summary["valid_plans_considered"] < summary["plans_in_full_space"]
    record_series(benchmark, figure="ablation-invalid-branch", summary=summary)
