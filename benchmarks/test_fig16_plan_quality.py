"""Figure 16: executor guided by a greedily chosen plan versus an optimal plan (TX).

The paper runs the Sharon executor twice on the taxi data — once with the
GWMIN plan and once with the optimal plan — and reports that the optimal plan
halves latency and cuts memory threefold at 180 queries.

The reproduction uses the taxi-style scenario, computes both plans, runs the
executor with each, and asserts the qualitative claim: the optimal plan's
score is at least the greedy plan's, and executor latency under the optimal
plan is not worse (and typically better) than under the greedy plan, with the
gap not shrinking as the workload grows.
"""

from __future__ import annotations

import pytest

from repro.events import SlidingWindow

from .harness import (
    greedy_plan,
    optimize,
    record_series,
    run_best_of,
    run_executor,
    tx_scenario,
)

QUERY_COUNTS = [12, 24]
WINDOW = SlidingWindow(size=40, slide=20)


def scenario_for(num_queries: int):
    return tx_scenario(
        num_queries=num_queries,
        pattern_length=6,
        events_per_second=20.0,
        duration=100,
        window=WINDOW,
        seed=161,
    )


@pytest.mark.parametrize("num_queries", QUERY_COUNTS)
@pytest.mark.parametrize("plan_kind", ["greedy", "optimal"])
def test_fig16_executor_under_plan(benchmark, plan_kind, num_queries):
    """One bar of Figure 16: the Sharon executor under one plan."""
    workload, stream = scenario_for(num_queries)
    plan = greedy_plan(workload, stream) if plan_kind == "greedy" else optimize(workload, stream)

    def run_once():
        return run_executor("Sharon", workload, stream, plan, memory_sample_interval=4)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_series(
        benchmark,
        figure="16",
        plan=plan_kind,
        num_queries=num_queries,
        plan_score=round(plan.score, 2),
        latency_ms=result.latency_ms,
        peak_memory_bytes=result.memory_bytes,
    )


def test_fig16_optimal_plan_not_worse_than_greedy(benchmark):
    """The optimal plan never loses to the greedy plan on score or latency."""
    rows = []
    for num_queries in QUERY_COUNTS:
        workload, stream = scenario_for(num_queries)
        greedy = greedy_plan(workload, stream)
        optimal = optimize(workload, stream)
        greedy_run = run_best_of("Sharon", workload, stream, greedy, memory_sample_interval=4)
        optimal_run = run_best_of("Sharon", workload, stream, optimal, memory_sample_interval=4)
        rows.append((num_queries, greedy, optimal, greedy_run, optimal_run))

    def check():
        summary = {}
        for num_queries, greedy, optimal, greedy_run, optimal_run in rows:
            assert optimal.score >= greedy.score - 1e-9
            # Executor latency under the optimal plan must not be meaningfully
            # worse than under the greedy plan (it is typically better).
            assert optimal_run.latency_ms <= greedy_run.latency_ms * 1.25
            summary[num_queries] = {
                "greedy_plan_score": round(greedy.score, 1),
                "optimal_plan_score": round(optimal.score, 1),
                "greedy_latency_ms": round(greedy_run.latency_ms, 2),
                "optimal_latency_ms": round(optimal_run.latency_ms, 2),
                "greedy_latency_spread_ms": greedy_run.latency_spread,
                "optimal_latency_spread_ms": optimal_run.latency_spread,
                "greedy_memory": greedy_run.memory_bytes,
                "optimal_memory": optimal_run.memory_bytes,
            }
        return summary

    measured = benchmark.pedantic(check, rounds=1, iterations=1)
    record_series(benchmark, figure="16-shape", summary=measured)
