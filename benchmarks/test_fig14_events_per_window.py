"""Figure 14(a)/(e): online approaches while varying events per window (TX).

The paper reports that Sharon's advantage over A-Seq grows linearly with the
number of events per window (5- to 7-fold between 200k and 1200k events).
The reproduction sweeps the stream rate of the taxi-style scenario, measures
latency and throughput of both online executors, and asserts the qualitative
shape: Sharon is at least as fast as A-Seq everywhere and the speed-up does
not shrink as windows grow.
"""

from __future__ import annotations

import pytest

from repro.events import SlidingWindow

from .harness import (
    optimize,
    record_series,
    require_shape_cpus,
    retry_shape,
    run_best_of,
    run_executor,
    tx_scenario,
)

EVENT_RATES = [10.0, 20.0, 40.0]
WINDOW = SlidingWindow(size=40, slide=20)


def scenario_for(rate: float):
    return tx_scenario(
        num_queries=16,
        pattern_length=6,
        events_per_second=rate,
        duration=100,
        window=WINDOW,
        seed=141,
    )


@pytest.mark.parametrize("rate", EVENT_RATES)
@pytest.mark.parametrize("approach", ["Sharon", "A-Seq"])
def test_fig14_events_per_window(benchmark, approach, rate):
    """One point of Figure 14(a)/(e) for one online approach."""
    workload, stream = scenario_for(rate)
    plan = optimize(workload, stream)

    def run_once():
        return run_executor(approach, workload, stream, plan)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    record_series(
        benchmark,
        figure="14ae",
        approach=approach,
        events_per_window=rate * WINDOW.size,
        latency_ms=result.latency_ms,
        throughput_events_per_second=result.throughput,
    )


def test_fig14_speedup_grows_with_window_content(benchmark):
    """Sharon's gain over A-Seq does not shrink as events per window grow.

    Contention-hardened: each attempt re-measures every point best-of-5 and
    the whole measurement is retried via ``retry_shape`` — sub-millisecond
    latency ratios on a loaded CI machine can transiently invert even with
    best-of-N sampling, while a real regression fails every attempt.
    """

    require_shape_cpus()

    def measure_and_check():
        speedups = []
        spreads = None
        for rate in EVENT_RATES:
            workload, stream = scenario_for(rate)
            plan = optimize(workload, stream)
            sharon = run_best_of("Sharon", workload, stream, plan, repeats=5)
            aseq = run_best_of("A-Seq", workload, stream, plan, repeats=5)
            speedups.append(aseq.latency_ms / max(sharon.latency_ms, 1e-9))
            spreads = (sharon.latency_spread, aseq.latency_spread)
        # Tolerance: Sharon must not be meaningfully slower at any point
        # (0.95 absorbs residual timer noise on equal-latency points).
        assert all(s >= 0.95 for s in speedups), speedups
        # The paper reports the speed-up growing from 5x to 7x over a 6x
        # window-content increase; at reproduction scale we require that the
        # advantage at least does not collapse as windows grow.
        assert speedups[-1] >= speedups[0] * 0.7, speedups
        return [round(s, 2) for s in speedups], spreads

    measured, (sharon_spread, aseq_spread) = benchmark.pedantic(
        lambda: retry_shape(measure_and_check), rounds=1, iterations=1
    )
    record_series(
        benchmark,
        figure="14ae-shape",
        events_per_window=[r * WINDOW.size for r in EVENT_RATES],
        sharon_speedup_over_aseq=measured,
        sharon_latency_spread_ms_at_largest=sharon_spread,
        aseq_latency_spread_ms_at_largest=aseq_spread,
    )
